//! The deterministic `hzc bench` suite.
//!
//! Every case runs entirely on the virtual clock with paper-calibrated
//! compute models ([`hzccl::paper_model`]), seeded synthetic fields, and the
//! default network model — so two runs of the same suite on any host produce
//! bit-identical numbers. That determinism is what makes the snapshot diff
//! ([`crate::snapshot`]) a regression gate instead of a noise detector.
//!
//! A case is a point in `(op, variant, ranks, KiB/rank, segments, faulted)`
//! space; [`canonical_cases`] is the checked-in baseline sweep (the
//! `BENCH_results.json` at the repo root), [`quick_cases`] a strict subset
//! for CI smoke, and [`build_cases`] the CLI's constructive override.

use crate::{scaled_rank_fields, CollOp};
use hzccl::{Mode, Resilience, Variant};
use netsim::{
    ComputeTiming, CriticalPath, FaultPlan, NetConfig, SimBuilder, SimEngine, Topology, TraceConfig,
};

/// Shared inputs of every case in a suite run.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Seed for the synthetic field generator and the fault plan.
    pub seed: u64,
    /// Absolute error bound of the compressed flavours.
    pub eb: f64,
    /// Synthetic application generating the per-rank fields.
    pub app: datasets::App,
    /// Network model (defaults to the paper calibration).
    pub net: NetConfig,
    /// Execution engine driving the virtual cluster. Both engines produce
    /// byte-identical suite results; the knob exists so CI can pin exactly
    /// that (`hzc bench --engine`).
    pub engine: SimEngine,
}

impl Default for SuiteConfig {
    fn default() -> SuiteConfig {
        SuiteConfig {
            seed: 0,
            eb: 1e-4,
            app: datasets::App::SimSet2,
            net: NetConfig::default(),
            engine: SimEngine::default(),
        }
    }
}

/// One point of the bench sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseSpec {
    /// Which collective the case runs.
    pub op: CollOp,
    /// Which flavour runs it.
    pub variant: Variant,
    /// Rank count of the virtual cluster.
    pub ranks: usize,
    /// Per-rank field size in KiB.
    pub kb: usize,
    /// Pipeline segment count (1 = phase-serial).
    pub segments: usize,
    /// Runs under a seeded fault plan with the resilient transport on.
    pub faulted: bool,
    /// `(nodes, ranks-per-node)` of a paper two-tier fabric
    /// ([`Topology::paper`]): the cluster and the collective both see it, so
    /// hierarchical schedules engage. `None` = the flat single-tier network
    /// (every pre-existing case, whose numbers must stay bit-identical).
    pub topology: Option<(usize, usize)>,
}

impl CaseSpec {
    /// Stable case identity — the diff key of the snapshot format.
    pub fn id(&self) -> String {
        let mut id = format!(
            "{}/{}/r{}/kb{}/s{}",
            self.op_name(),
            self.variant.name(),
            self.ranks,
            self.kb,
            self.segments
        );
        if let Some((nodes, ppn)) = self.topology {
            id.push_str(&format!("/t{nodes}x{ppn}"));
        }
        if self.faulted {
            id.push_str("-faulted");
        }
        id
    }

    /// Stable op name used in ids and snapshots.
    pub fn op_name(&self) -> &'static str {
        match self.op {
            CollOp::Allreduce => "allreduce",
            CollOp::ReduceScatter => "reduce_scatter",
        }
    }

    /// Which variant's paper throughput table times the case (auto borrows
    /// the hz table — its headline dispatch target).
    fn timing_variant(&self) -> Variant {
        match self.variant {
            Variant::Auto => Variant::Hzccl,
            v => v,
        }
    }
}

/// The measured outcome of one case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The case that ran.
    pub spec: CaseSpec,
    /// End-to-end virtual seconds (slowest rank).
    pub virtual_secs: f64,
    /// Total bytes that crossed the virtual wire.
    pub wire_bytes: u64,
    /// Total uncompressed bytes those messages represented.
    pub logical_bytes: u64,
    /// Aggregated per-rank cost buckets.
    pub breakdown: netsim::Breakdown,
    /// Causal critical-path analysis of the run.
    pub critpath: CriticalPath,
    /// Median per-rank end-to-end latency (log2-bucket interpolation).
    pub latency_p50: f64,
    /// 99th-percentile per-rank end-to-end latency.
    pub latency_p99: f64,
}

/// The canonical paper-calibrated sweep backing `BENCH_results.json`:
/// {allreduce, reduce_scatter} × {8, 64} ranks × {16, 256, 1024} KiB ×
/// ({mpi, ccoll, hz} × {serial, S=8} + auto), then the two-tier topology
/// cases ([`hierarchical_cases`]), plus one faulted resilient case.
/// 97 cases. New case families are appended *before* the faulted closer so
/// pre-existing snapshot lines stay byte-identical across suite growth.
pub fn canonical_cases() -> Vec<CaseSpec> {
    let mut cases = build_cases(
        &[CollOp::Allreduce, CollOp::ReduceScatter],
        &[Variant::Mpi, Variant::CColl, Variant::Hzccl, Variant::Auto],
        &[8, 64],
        &[16, 256, 1024],
        &[1, 8],
        false,
    );
    cases.extend(hierarchical_cases(false));
    cases.push(fault_case());
    cases
}

/// The CI smoke subset: 8 ranks, {16, 256} KiB, every variant, the small
/// two-tier fabric, plus the faulted case. A strict subset of
/// [`canonical_cases`] by id, so `--against` the canonical baseline
/// compares every quick case.
pub fn quick_cases() -> Vec<CaseSpec> {
    let mut cases = build_cases(
        &[CollOp::Allreduce, CollOp::ReduceScatter],
        &[Variant::Mpi, Variant::CColl, Variant::Hzccl, Variant::Auto],
        &[8],
        &[16, 256],
        &[1, 8],
        false,
    );
    cases.extend(hierarchical_cases(true));
    cases.push(fault_case());
    cases
}

/// The `--scale` family: the regime the event-driven engine exists for.
/// Ring allreduce at {512, 2048, 4096} ranks — far past what a
/// thread-per-rank scheduler could sensibly host — at a small per-rank
/// field so the sweep stays wall-clock-friendly. Kept out of
/// [`canonical_cases`] so the committed `BENCH_results.json` is unchanged;
/// CI covers the regime with an untraced 4096-rank smoke
/// (`tests/engine_equivalence.rs`) because fully-traced r4096 cases cost
/// minutes apiece — `hzc bench --scale` is the manual/nightly sweep.
pub fn scale_cases() -> Vec<CaseSpec> {
    let mut out = Vec::new();
    for ranks in [512usize, 2048, 4096] {
        for variant in [Variant::Mpi, Variant::Hzccl] {
            out.push(CaseSpec {
                op: CollOp::Allreduce,
                variant,
                ranks,
                kb: 4,
                segments: 1,
                faulted: false,
                topology: None,
            });
        }
    }
    out
}

/// The two-tier topology sweep: hierarchical allreduce on paper fabrics
/// ([`Topology::paper`]: intra-node links 10× faster than inter-node).
/// The quick subset covers a small 4×2 fabric; the canonical sweep adds the
/// paper-scale 8×8 fabric across every flavour (there the hierarchical hz
/// schedule beats the flat hz ring — the headline win this suite pins).
fn hierarchical_cases(quick: bool) -> Vec<CaseSpec> {
    let mk = |variant, nodes: usize, ppn: usize, kb| CaseSpec {
        op: CollOp::Allreduce,
        variant,
        ranks: nodes * ppn,
        kb,
        segments: 1,
        faulted: false,
        topology: Some((nodes, ppn)),
    };
    let mut out = Vec::new();
    for kb in [16, 256] {
        for v in [Variant::Hzccl, Variant::Auto] {
            out.push(mk(v, 4, 2, kb));
        }
    }
    if !quick {
        for kb in [256, 1024] {
            for v in [Variant::Mpi, Variant::CColl, Variant::Hzccl, Variant::Auto] {
                out.push(mk(v, 8, 8, kb));
            }
        }
    }
    out
}

/// The fixed faulted closer of every suite: hz allreduce, 8 ranks, 64 KiB,
/// serial, drop 2% + corrupt 1%, resilient transport on.
fn fault_case() -> CaseSpec {
    CaseSpec {
        op: CollOp::Allreduce,
        variant: Variant::Hzccl,
        ranks: 8,
        kb: 64,
        segments: 1,
        faulted: true,
        topology: None,
    }
}

/// Constructive case enumeration (the CLI's `--ops/--variants/--ranks-list/
/// --sizes-kb/--segments-list` overrides). [`Variant::Auto`] always runs
/// serially (the tuner's plan owns the segment knob), so it contributes one
/// case per `(op, ranks, kb)` regardless of `segments_list`. When
/// `include_fault` is set, one fixed faulted case (hz allreduce, 8 ranks,
/// 64 KiB, serial, drop 2% + corrupt 1%, resilient transport) is appended
/// if `hz` and `allreduce` are in the sweep.
pub fn build_cases(
    ops: &[CollOp],
    variants: &[Variant],
    ranks_list: &[usize],
    sizes_kb: &[usize],
    segments_list: &[usize],
    include_fault: bool,
) -> Vec<CaseSpec> {
    let mut out = Vec::new();
    for &op in ops {
        for &variant in variants {
            for &ranks in ranks_list {
                for &kb in sizes_kb {
                    if variant == Variant::Auto {
                        out.push(CaseSpec {
                            op,
                            variant,
                            ranks,
                            kb,
                            segments: 1,
                            faulted: false,
                            topology: None,
                        });
                        continue;
                    }
                    for &segments in segments_list {
                        out.push(CaseSpec {
                            op,
                            variant,
                            ranks,
                            kb,
                            segments,
                            faulted: false,
                            topology: None,
                        });
                    }
                }
            }
        }
    }
    if include_fault && ops.contains(&CollOp::Allreduce) && variants.contains(&Variant::Hzccl) {
        out.push(fault_case());
    }
    out
}

/// Run one case on the virtual cluster and analyze it.
pub fn run_case(spec: &CaseSpec, cfg: &SuiteConfig) -> CaseResult {
    let elems = ((spec.kb << 10) / 4).max(spec.ranks);
    let base = cfg.app.generate(elems, cfg.seed);
    let fields = scaled_rank_fields(&base, spec.ranks);

    let timing =
        ComputeTiming::Modeled(hzccl::paper_model(spec.timing_variant(), Mode::SingleThread));
    let topo = spec.topology.map(|(nodes, ppn)| Topology::paper(nodes, ppn));
    let mut cluster = SimBuilder::new(spec.ranks)
        .net(cfg.net)
        .timing(timing)
        .trace(TraceConfig::default())
        .engine(cfg.engine);
    if spec.faulted {
        cluster = cluster.faults(FaultPlan::new(cfg.seed).with_drop(0.02).with_corrupt(0.01));
    }
    if let Some(t) = topo {
        cluster = cluster.topology(t);
    }

    let mut opts = hzccl::collectives::CollectiveOpts::for_variant(spec.variant, cfg.eb)
        .with_mode(Mode::SingleThread)
        .with_segments(spec.segments);
    if spec.faulted {
        opts = opts.with_resilience(Resilience::default());
    }
    if let Some(t) = topo {
        opts = opts.with_topology(t);
    }
    let op = spec.op;
    let report = cluster
        .run(|comm| {
            let data = &fields[comm.rank()];
            match op {
                CollOp::Allreduce => {
                    hzccl::collectives::allreduce(comm, data, &opts).expect("bench allreduce");
                }
                CollOp::ReduceScatter => {
                    hzccl::collectives::reduce_scatter(comm, data, &opts).expect("bench rs");
                }
            }
        })
        .expect_clean();

    let virtual_secs = report.stats.makespan;
    let breakdown = report.stats.total;
    let mut registry = netsim::Registry::new();
    registry.record_report(&report);
    let (latency_p50, latency_p99) = registry
        .histogram("hz_collective_latency_seconds")
        .map(|h| (h.quantile(0.5), h.quantile(0.99)))
        .unwrap_or((0.0, 0.0));

    let mut wire_bytes = 0u64;
    let mut logical_bytes = 0u64;
    for t in &report.traces {
        for ev in &t.events {
            if let netsim::Event::Send { wire_bytes: w, logical_bytes: l, .. } = *ev {
                wire_bytes += w as u64;
                logical_bytes += l as u64;
            }
        }
    }
    let critpath = CriticalPath::analyze_with_topology(&report.traces, &cfg.net, topo.as_ref());

    CaseResult {
        spec: spec.clone(),
        virtual_secs,
        wire_bytes,
        logical_bytes,
        breakdown,
        critpath,
        latency_p50,
        latency_p99,
    }
}

/// Run every case, invoking `progress` after each one (the CLI's live
/// table row).
pub fn run_suite(
    cases: &[CaseSpec],
    cfg: &SuiteConfig,
    mut progress: impl FnMut(&CaseResult),
) -> Vec<CaseResult> {
    let mut out = Vec::with_capacity(cases.len());
    for spec in cases {
        let result = run_case(spec, cfg);
        progress(&result);
        out.push(result);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_ids_are_a_subset_of_canonical_ids() {
        let canon: std::collections::BTreeSet<String> =
            canonical_cases().iter().map(|c| c.id()).collect();
        assert_eq!(canon.len(), canonical_cases().len(), "canonical ids unique");
        for c in quick_cases() {
            assert!(canon.contains(&c.id()), "{} missing from canonical", c.id());
        }
    }

    #[test]
    fn case_counts_match_the_documented_sweep() {
        // 2 ops x (3 static variants x 2 segment counts + auto) x 2 ranks x
        // 3 sizes + 12 two-tier topology cases + 1 faulted
        assert_eq!(canonical_cases().len(), 2 * 7 * 2 * 3 + 12 + 1);
        assert_eq!(quick_cases().len(), 2 * 7 * 2 + 4 + 1);
        // the faulted closer stays last, so pre-topology snapshot lines
        // (including the final-line comma) never move
        assert!(canonical_cases().last().unwrap().faulted);
        assert!(quick_cases().last().unwrap().faulted);
    }

    #[test]
    fn scale_family_is_disjoint_from_the_committed_baseline() {
        let cases = scale_cases();
        assert_eq!(cases.len(), 3 * 2, "{{512,2048,4096}} x {{mpi,hz}}");
        assert!(cases.iter().any(|c| c.id() == "allreduce/hz/r4096/kb4/s1"));
        // No id overlap with canonical: a --scale run can never be diffed
        // against (or mistaken for) the committed baseline's cases.
        let canon: std::collections::BTreeSet<String> =
            canonical_cases().iter().map(|c| c.id()).collect();
        for c in &cases {
            assert!(!canon.contains(&c.id()), "{} collides with canonical", c.id());
        }
    }

    #[test]
    fn topology_cases_carry_the_tier_suffix_in_their_id() {
        let cases = canonical_cases();
        assert!(cases.iter().any(|c| c.id() == "allreduce/hz/r64/kb1024/s1/t8x8"));
        assert!(cases.iter().any(|c| c.id() == "allreduce/auto/r8/kb16/s1/t4x2"));
    }

    #[test]
    fn run_case_is_deterministic_and_self_consistent() {
        let cfg = SuiteConfig::default();
        let spec = CaseSpec {
            op: CollOp::Allreduce,
            variant: Variant::Hzccl,
            ranks: 4,
            kb: 8,
            segments: 2,
            faulted: false,
            topology: None,
        };
        let a = run_case(&spec, &cfg);
        let b = run_case(&spec, &cfg);
        assert_eq!(a.virtual_secs.to_bits(), b.virtual_secs.to_bits(), "bit-stable time");
        assert_eq!(a.wire_bytes, b.wire_bytes);
        assert!(a.wire_bytes > 0 && a.logical_bytes >= a.wire_bytes);
        // the analyzer's tiling invariant holds on a real collective
        let rel = (a.critpath.length - a.virtual_secs).abs() / a.virtual_secs;
        assert!(rel <= 1e-9, "path {} vs makespan {}", a.critpath.length, a.virtual_secs);
        assert!(a.latency_p99 >= a.latency_p50 && a.latency_p50 > 0.0);
    }

    #[test]
    fn hierarchical_case_attributes_both_tiers_and_tiles_the_run() {
        use netsim::LinkTier;
        let cfg = SuiteConfig::default();
        let spec = CaseSpec {
            op: CollOp::Allreduce,
            variant: Variant::Hzccl,
            ranks: 8,
            kb: 16,
            segments: 1,
            faulted: false,
            topology: Some((4, 2)),
        };
        let r = run_case(&spec, &cfg);
        let intra = r.critpath.by_tier[LinkTier::Intra.index()];
        let inter = r.critpath.by_tier[LinkTier::Inter.index()];
        assert!(intra.hops > 0 && inter.hops > 0, "path crosses both tiers");
        assert_eq!(r.critpath.by_tier[LinkTier::Flat.index()].hops, 0);
        let rel = (r.critpath.length - r.virtual_secs).abs() / r.virtual_secs;
        assert!(rel <= 1e-9, "path {} vs makespan {}", r.critpath.length, r.virtual_secs);
    }
}
