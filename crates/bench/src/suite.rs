//! The deterministic `hzc bench` suite.
//!
//! Every case runs entirely on the virtual clock with paper-calibrated
//! compute models ([`hzccl::paper_model`]), seeded synthetic fields, and the
//! default network model — so two runs of the same suite on any host produce
//! bit-identical numbers. That determinism is what makes the snapshot diff
//! ([`crate::snapshot`]) a regression gate instead of a noise detector.
//!
//! A case is a point in `(op, variant, ranks, KiB/rank, segments, faulted)`
//! space; [`canonical_cases`] is the checked-in baseline sweep (the
//! `BENCH_results.json` at the repo root), [`quick_cases`] a strict subset
//! for CI smoke, and [`build_cases`] the CLI's constructive override.

use crate::{scaled_rank_fields, CollOp};
use hzccl::{Mode, Resilience, Variant};
use netsim::{Cluster, ComputeTiming, CriticalPath, FaultPlan, NetConfig, TraceConfig};

/// Shared inputs of every case in a suite run.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Seed for the synthetic field generator and the fault plan.
    pub seed: u64,
    /// Absolute error bound of the compressed flavours.
    pub eb: f64,
    /// Synthetic application generating the per-rank fields.
    pub app: datasets::App,
    /// Network model (defaults to the paper calibration).
    pub net: NetConfig,
}

impl Default for SuiteConfig {
    fn default() -> SuiteConfig {
        SuiteConfig { seed: 0, eb: 1e-4, app: datasets::App::SimSet2, net: NetConfig::default() }
    }
}

/// One point of the bench sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseSpec {
    /// Which collective the case runs.
    pub op: CollOp,
    /// Which flavour runs it.
    pub variant: Variant,
    /// Rank count of the virtual cluster.
    pub ranks: usize,
    /// Per-rank field size in KiB.
    pub kb: usize,
    /// Pipeline segment count (1 = phase-serial).
    pub segments: usize,
    /// Runs under a seeded fault plan with the resilient transport on.
    pub faulted: bool,
}

impl CaseSpec {
    /// Stable case identity — the diff key of the snapshot format.
    pub fn id(&self) -> String {
        let mut id = format!(
            "{}/{}/r{}/kb{}/s{}",
            self.op_name(),
            self.variant.name(),
            self.ranks,
            self.kb,
            self.segments
        );
        if self.faulted {
            id.push_str("-faulted");
        }
        id
    }

    /// Stable op name used in ids and snapshots.
    pub fn op_name(&self) -> &'static str {
        match self.op {
            CollOp::Allreduce => "allreduce",
            CollOp::ReduceScatter => "reduce_scatter",
        }
    }

    /// Which variant's paper throughput table times the case (auto borrows
    /// the hz table — its headline dispatch target).
    fn timing_variant(&self) -> Variant {
        match self.variant {
            Variant::Auto => Variant::Hzccl,
            v => v,
        }
    }
}

/// The measured outcome of one case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The case that ran.
    pub spec: CaseSpec,
    /// End-to-end virtual seconds (slowest rank).
    pub virtual_secs: f64,
    /// Total bytes that crossed the virtual wire.
    pub wire_bytes: u64,
    /// Total uncompressed bytes those messages represented.
    pub logical_bytes: u64,
    /// Aggregated per-rank cost buckets.
    pub breakdown: netsim::Breakdown,
    /// Causal critical-path analysis of the run.
    pub critpath: CriticalPath,
    /// Median per-rank end-to-end latency (log2-bucket interpolation).
    pub latency_p50: f64,
    /// 99th-percentile per-rank end-to-end latency.
    pub latency_p99: f64,
}

/// The canonical paper-calibrated sweep backing `BENCH_results.json`:
/// {allreduce, reduce_scatter} × {8, 64} ranks × {16, 256, 1024} KiB ×
/// ({mpi, ccoll, hz} × {serial, S=8} + auto), plus one faulted resilient
/// case. 85 cases.
pub fn canonical_cases() -> Vec<CaseSpec> {
    build_cases(
        &[CollOp::Allreduce, CollOp::ReduceScatter],
        &[Variant::Mpi, Variant::CColl, Variant::Hzccl, Variant::Auto],
        &[8, 64],
        &[16, 256, 1024],
        &[1, 8],
        true,
    )
}

/// The CI smoke subset: 8 ranks, {16, 256} KiB, every variant, plus the
/// faulted case. A strict subset of [`canonical_cases`] by id, so
/// `--against` the canonical baseline compares every quick case.
pub fn quick_cases() -> Vec<CaseSpec> {
    build_cases(
        &[CollOp::Allreduce, CollOp::ReduceScatter],
        &[Variant::Mpi, Variant::CColl, Variant::Hzccl, Variant::Auto],
        &[8],
        &[16, 256],
        &[1, 8],
        true,
    )
}

/// Constructive case enumeration (the CLI's `--ops/--variants/--ranks-list/
/// --sizes-kb/--segments-list` overrides). [`Variant::Auto`] always runs
/// serially (the tuner's plan owns the segment knob), so it contributes one
/// case per `(op, ranks, kb)` regardless of `segments_list`. When
/// `include_fault` is set, one fixed faulted case (hz allreduce, 8 ranks,
/// 64 KiB, serial, drop 2% + corrupt 1%, resilient transport) is appended
/// if `hz` and `allreduce` are in the sweep.
pub fn build_cases(
    ops: &[CollOp],
    variants: &[Variant],
    ranks_list: &[usize],
    sizes_kb: &[usize],
    segments_list: &[usize],
    include_fault: bool,
) -> Vec<CaseSpec> {
    let mut out = Vec::new();
    for &op in ops {
        for &variant in variants {
            for &ranks in ranks_list {
                for &kb in sizes_kb {
                    if variant == Variant::Auto {
                        out.push(CaseSpec { op, variant, ranks, kb, segments: 1, faulted: false });
                        continue;
                    }
                    for &segments in segments_list {
                        out.push(CaseSpec { op, variant, ranks, kb, segments, faulted: false });
                    }
                }
            }
        }
    }
    if include_fault && ops.contains(&CollOp::Allreduce) && variants.contains(&Variant::Hzccl) {
        out.push(CaseSpec {
            op: CollOp::Allreduce,
            variant: Variant::Hzccl,
            ranks: 8,
            kb: 64,
            segments: 1,
            faulted: true,
        });
    }
    out
}

/// Run one case on the virtual cluster and analyze it.
pub fn run_case(spec: &CaseSpec, cfg: &SuiteConfig) -> CaseResult {
    let elems = ((spec.kb << 10) / 4).max(spec.ranks);
    let base = cfg.app.generate(elems, cfg.seed);
    let fields = scaled_rank_fields(&base, spec.ranks);

    let timing =
        ComputeTiming::Modeled(hzccl::paper_model(spec.timing_variant(), Mode::SingleThread));
    let mut cluster = Cluster::new(spec.ranks)
        .with_net(cfg.net)
        .with_timing(timing)
        .with_trace(TraceConfig::default());
    if spec.faulted {
        cluster = cluster.with_faults(FaultPlan::new(cfg.seed).with_drop(0.02).with_corrupt(0.01));
    }

    let mut opts = hzccl::collectives::CollectiveOpts::for_variant(spec.variant, cfg.eb)
        .with_mode(Mode::SingleThread)
        .with_segments(spec.segments);
    if spec.faulted {
        opts = opts.with_resilience(Resilience::default());
    }
    let op = spec.op;
    let outcomes = cluster.run(|comm| {
        let data = &fields[comm.rank()];
        match op {
            CollOp::Allreduce => {
                hzccl::collectives::allreduce(comm, data, &opts).expect("bench allreduce");
            }
            CollOp::ReduceScatter => {
                hzccl::collectives::reduce_scatter(comm, data, &opts).expect("bench rs");
            }
        }
    });

    let mut virtual_secs = 0f64;
    let mut breakdown = netsim::Breakdown::default();
    for o in &outcomes {
        virtual_secs = virtual_secs.max(o.elapsed);
        breakdown += o.breakdown;
    }
    let mut registry = netsim::Registry::new();
    registry.record_run(&outcomes);
    let (latency_p50, latency_p99) = registry
        .histogram("hz_collective_latency_seconds")
        .map(|h| (h.quantile(0.5), h.quantile(0.99)))
        .unwrap_or((0.0, 0.0));

    let (_, traces) = netsim::trace::take_traces(outcomes);
    let mut wire_bytes = 0u64;
    let mut logical_bytes = 0u64;
    for t in &traces {
        for ev in &t.events {
            if let netsim::Event::Send { wire_bytes: w, logical_bytes: l, .. } = *ev {
                wire_bytes += w as u64;
                logical_bytes += l as u64;
            }
        }
    }
    let critpath = CriticalPath::analyze(&traces, &cfg.net);

    CaseResult {
        spec: spec.clone(),
        virtual_secs,
        wire_bytes,
        logical_bytes,
        breakdown,
        critpath,
        latency_p50,
        latency_p99,
    }
}

/// Run every case, invoking `progress` after each one (the CLI's live
/// table row).
pub fn run_suite(
    cases: &[CaseSpec],
    cfg: &SuiteConfig,
    mut progress: impl FnMut(&CaseResult),
) -> Vec<CaseResult> {
    let mut out = Vec::with_capacity(cases.len());
    for spec in cases {
        let result = run_case(spec, cfg);
        progress(&result);
        out.push(result);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_ids_are_a_subset_of_canonical_ids() {
        let canon: std::collections::BTreeSet<String> =
            canonical_cases().iter().map(|c| c.id()).collect();
        assert_eq!(canon.len(), canonical_cases().len(), "canonical ids unique");
        for c in quick_cases() {
            assert!(canon.contains(&c.id()), "{} missing from canonical", c.id());
        }
    }

    #[test]
    fn case_counts_match_the_documented_sweep() {
        // 2 ops x (3 static variants x 2 segment counts + auto) x 2 ranks x
        // 3 sizes + 1 faulted
        assert_eq!(canonical_cases().len(), 2 * 7 * 2 * 3 + 1);
        assert_eq!(quick_cases().len(), 2 * 7 * 2 + 1);
    }

    #[test]
    fn run_case_is_deterministic_and_self_consistent() {
        let cfg = SuiteConfig::default();
        let spec = CaseSpec {
            op: CollOp::Allreduce,
            variant: Variant::Hzccl,
            ranks: 4,
            kb: 8,
            segments: 2,
            faulted: false,
        };
        let a = run_case(&spec, &cfg);
        let b = run_case(&spec, &cfg);
        assert_eq!(a.virtual_secs.to_bits(), b.virtual_secs.to_bits(), "bit-stable time");
        assert_eq!(a.wire_bytes, b.wire_bytes);
        assert!(a.wire_bytes > 0 && a.logical_bytes >= a.wire_bytes);
        // the analyzer's tiling invariant holds on a real collective
        let rel = (a.critpath.length - a.virtual_secs).abs() / a.virtual_secs;
        assert!(rel <= 1e-9, "path {} vs makespan {}", a.critpath.length, a.virtual_secs);
        assert!(a.latency_p99 >= a.latency_p50 && a.latency_p50 > 0.0);
    }
}
