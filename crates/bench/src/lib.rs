//! Shared harness utilities for the table/figure benches.
//!
//! Every bench target honours the same environment knobs:
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `HZ_SIZE_MB` | 16 | field size for compressor experiments |
//! | `HZ_RANKS` | 64 | rank count for fixed-node collective experiments |
//! | `HZ_MAX_RANKS` | 512 | cap for the scalability sweeps |
//! | `HZ_THREADS` | host cores | multi-thread mode thread count |
//! | `HZ_NODE_MSG_MB` | 8 | per-rank message of the scalability sweeps |
//! | `HZ_PAPER_MODEL` | off | use paper-calibrated throughputs instead of host calibration |
//! | `HZ_METRICS_OUT` | off | directory receiving a `BENCH_<name>.json` metrics snapshot; also enables flight-recorder tracing in [`run_collective`] |
//!
//! Collective benches always use [`netsim::ComputeTiming::Modeled`]: the
//! data path runs for real (ratios, pipeline mixes and correctness are
//! genuine), while per-kernel time comes from throughputs measured once on
//! this host without thread oversubscription — or from the paper's
//! calibration when `HZ_PAPER_MODEL=1`.

use hzccl::{CollectiveConfig, Mode, Variant};
use netsim::{ComputeTiming, NetConfig};
use std::time::Instant;

pub mod kernel_throughput;
pub mod snapshot;
pub mod suite;

/// Read a `usize` env knob.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Read a boolean env knob (`1`, `true`, `yes`).
pub fn env_flag(name: &str) -> bool {
    matches!(
        std::env::var(name).unwrap_or_default().to_ascii_lowercase().as_str(),
        "1" | "true" | "yes"
    )
}

/// Field size (elements) for compressor experiments.
pub fn field_elems() -> usize {
    env_usize("HZ_SIZE_MB", 16) * (1 << 20) / 4
}

/// Rank count for fixed-node collective experiments.
pub fn ranks() -> usize {
    env_usize("HZ_RANKS", 64)
}

/// Thread count of the multi-thread mode.
pub fn mt_threads() -> usize {
    env_usize("HZ_THREADS", std::thread::available_parallelism().map(|t| t.get()).unwrap_or(2))
}

/// Per-rank message elements for the node-count sweeps.
pub fn node_msg_elems() -> usize {
    env_usize("HZ_NODE_MSG_MB", 8) * (1 << 20) / 4
}

/// The network model used by all collective benches (effective-goodput
/// calibration; see `netsim::NetConfig` docs).
pub fn net() -> NetConfig {
    NetConfig::default()
}

/// Compute-timing model for a collective variant: paper calibration when
/// `HZ_PAPER_MODEL=1`, otherwise throughputs measured on this host from the
/// real kernels over `sample`.
///
/// Host calibrations are memoized per `(variant, mode)` for the lifetime of
/// the bench process, so every point of a sweep is timed against the same
/// model (and the measurement cost is paid once).
pub fn timing_for(variant: Variant, mode: Mode, sample: &[f32], eb: f64) -> ComputeTiming {
    use std::collections::HashMap;
    use std::sync::Mutex;

    let cfg = CollectiveConfig::new(eb, mode);
    if env_flag("HZ_PAPER_MODEL") {
        return ComputeTiming::Modeled(hzccl::paper_model(variant, mode));
    }
    static CACHE: Mutex<Option<HashMap<(u8, usize), netsim::ThroughputModel>>> = Mutex::new(None);
    let key = (
        match variant {
            Variant::Mpi => 0u8,
            Variant::CColl => 1,
            Variant::Hzccl => 2,
            Variant::Auto => 3,
        },
        mode.threads(),
    );
    let mut guard = CACHE.lock().expect("calibration cache poisoned");
    let cache = guard.get_or_insert_with(HashMap::new);
    let model = *cache.entry(key).or_insert_with(|| match variant {
        Variant::CColl => hzccl::calibrate_doc(sample, &cfg),
        // MPI only exercises Cpt/Other; the hz calibration covers those.
        // Auto may dispatch to any flavour — time it against the hz table
        // (the conservative choice for its headline path).
        Variant::Mpi | Variant::Hzccl | Variant::Auto => hzccl::calibrate_hz(sample, &cfg),
    });
    ComputeTiming::Modeled(model)
}

/// Which collective a bench sweep runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollOp {
    /// Ring `Reduce_scatter(sum)`.
    ReduceScatter,
    /// Ring `Allreduce(sum)`.
    Allreduce,
}

/// Derive per-rank input fields from one base field (each rank holds a
/// slightly rescaled copy — same compressibility profile, distinct values,
/// zero regions preserved).
pub fn scaled_rank_fields(base: &[f32], nranks: usize) -> Vec<Vec<f32>> {
    (0..nranks)
        .map(|r| {
            let k = 1.0 + 0.001 * r as f32;
            base.iter().map(|&v| v * k).collect()
        })
        .collect()
}

/// Cap the calibration sample so host calibration stays cheap.
fn calibration_sample(field: &[f32]) -> &[f32] {
    &field[..field.len().min(1 << 21)]
}

/// Run one collective kernel over a simulated cluster (modeled timing, real
/// data) and return `(makespan_seconds, aggregated_breakdown)`.
///
/// When `HZ_METRICS_OUT` names a directory, the cluster additionally runs
/// with the flight recorder enabled; per-rank traces are folded into a
/// process-global [`netsim::Registry`] and flushed to
/// `HZ_METRICS_OUT/BENCH_<name>.json` after every run (the file is
/// overwritten, so the last snapshot of a sweep accumulates everything).
pub fn run_collective(
    kernel: hzccl::Kernel,
    op: CollOp,
    fields: &[Vec<f32>],
    eb: f64,
) -> (f64, netsim::Breakdown) {
    let nranks = fields.len();
    let mt = mt_threads();
    let mode = kernel.mode(mt).unwrap_or(Mode::SingleThread);
    let timing = timing_for(kernel.variant(), mode, calibration_sample(&fields[0]), eb);
    let mut cluster = netsim::SimBuilder::new(nranks).net(net()).timing(timing);
    if metrics_out_dir().is_some() {
        cluster = cluster.trace(netsim::TraceConfig::default());
    }
    let report = cluster
        .run(|comm| {
            let data = &fields[comm.rank()];
            match op {
                CollOp::Allreduce => {
                    kernel.allreduce(comm, data, eb, mt).expect("kernel allreduce");
                }
                CollOp::ReduceScatter => {
                    kernel.reduce_scatter(comm, data, eb, mt).expect("kernel reduce_scatter");
                }
            }
        })
        .expect_clean();
    record_metrics(&report);
    (report.stats.makespan, report.stats.total)
}

/// Where metric snapshots go, if requested via `HZ_METRICS_OUT`.
fn metrics_out_dir() -> Option<std::path::PathBuf> {
    std::env::var_os("HZ_METRICS_OUT").map(std::path::PathBuf::from)
}

/// The process-global metrics registry fed by [`run_collective`].
fn global_registry() -> &'static std::sync::Mutex<netsim::Registry> {
    use std::sync::{Mutex, OnceLock};
    static REGISTRY: OnceLock<Mutex<netsim::Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(netsim::Registry::new()))
}

/// Bench name for the metrics file: the executable stem with cargo's
/// trailing `-<hash>` disambiguator stripped.
fn bench_name() -> String {
    let exe = std::env::current_exe().ok();
    let stem =
        exe.as_deref().and_then(|p| p.file_stem()).and_then(|s| s.to_str()).unwrap_or("bench");
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem.to_string(),
    }
}

/// Fold one run's report into the global registry and (re)write the
/// `BENCH_<name>.json` snapshot. No-op unless `HZ_METRICS_OUT` is set.
pub fn record_metrics<R>(report: &netsim::RunReport<R>) {
    let Some(dir) = metrics_out_dir() else {
        return;
    };
    let mut guard = global_registry().lock().expect("metrics registry poisoned");
    guard.record_report(report);
    let path = dir.join(format!("BENCH_{}.json", bench_name()));
    let _ = std::fs::create_dir_all(&dir);
    if let Err(e) = std::fs::write(&path, guard.to_json().render()) {
        eprintln!("warning: could not write metrics snapshot {}: {e}", path.display());
    }
}

/// Best-of-`k` wall time of `f`, in seconds.
pub fn time_best(k: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..k.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// `bytes` processed in `secs`, as GB/s.
pub fn gbps(bytes: usize, secs: f64) -> f64 {
    bytes as f64 / secs / 1e9
}

/// Minimal fixed-width table printer for bench output.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Start a table and print its header row.
    pub fn new(columns: &[(&str, usize)]) -> Table {
        let widths: Vec<usize> = columns.iter().map(|c| c.1).collect();
        let header: Vec<String> = columns.iter().map(|(name, w)| format!("{name:<w$}")).collect();
        println!("{}", header.join(" | "));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 3 * (widths.len() - 1)));
        Table { widths }
    }

    /// Print one row; `cells` must match the header arity.
    pub fn row(&self, cells: &[String]) {
        assert_eq!(cells.len(), self.widths.len(), "row arity mismatch");
        let padded: Vec<String> =
            cells.iter().zip(&self.widths).map(|(c, w)| format!("{c:<w$}")).collect();
        println!("{}", padded.join(" | "));
    }
}

/// Print the standard bench banner.
pub fn banner(id: &str, what: &str) {
    println!();
    println!("=== {id}: {what} ===");
    println!(
        "(HZ_SIZE_MB={} HZ_RANKS={} HZ_THREADS={} HZ_PAPER_MODEL={})",
        env_usize("HZ_SIZE_MB", 16),
        ranks(),
        mt_threads(),
        env_flag("HZ_PAPER_MODEL") as u8
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_defaults() {
        assert_eq!(env_usize("HZ_DOES_NOT_EXIST_XYZ", 7), 7);
        assert!(!env_flag("HZ_DOES_NOT_EXIST_XYZ"));
    }

    #[test]
    fn gbps_math() {
        assert!((gbps(2_000_000_000, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_rejects_wrong_arity() {
        let t = Table::new(&[("a", 4), ("b", 4)]);
        t.row(&["x".into(), "y".into()]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.row(&["only-one".into()]);
        }));
        assert!(r.is_err());
    }
}
