//! ABL1 — ablation: the dynamic pipeline heuristic vs the static
//! homomorphic pipeline (always partial-decode + re-encode, as HoSZp-style
//! designs do). Quantifies how much of hZ-dynamic's Table V speedup comes
//! from pipelines ①-③.

use datasets::App;
use fzlight::{Config, ErrorBound};
use hzccl_bench::{banner, field_elems, gbps, mt_threads, time_best, Table};

fn main() {
    banner("ABL1", "ablation — dynamic vs static homomorphic pipeline");
    let n = field_elems();
    let bytes = 2 * n * 4;
    let threads = mt_threads();
    let table = Table::new(&[
        ("App", 12),
        ("Dynamic GB/s", 12),
        ("Static GB/s", 12),
        ("Dyn/Static", 10),
        ("P1-P3 share", 11),
    ]);
    for app in App::ALL {
        let a = app.generate(n, 0);
        let b = app.generate(n, 1);
        let eb = ErrorBound::Rel(1e-3).resolve(&a).expect("bound");
        let cfg = Config::new(ErrorBound::Abs(eb)).with_threads(threads);
        let ca = fzlight::compress(&a, &cfg).expect("compress a");
        let cb = fzlight::compress(&b, &cfg).expect("compress b");

        let (dyn_out, stats) = hzdyn::homomorphic_sum_with_stats(&ca, &cb).expect("dyn");
        let stat_out = hzdyn::homomorphic_sum_static(&ca, &cb).expect("static");
        assert_eq!(dyn_out.as_bytes(), stat_out.as_bytes(), "pipelines must agree");

        let t_dyn = time_best(5, || {
            std::hint::black_box(hzdyn::homomorphic_sum(&ca, &cb).expect("dyn"));
        });
        let t_stat = time_best(5, || {
            std::hint::black_box(hzdyn::homomorphic_sum_static(&ca, &cb).expect("static"));
        });
        let p = stats.percentages();
        table.row(&[
            app.name().into(),
            format!("{:.2}", gbps(bytes, t_dyn)),
            format!("{:.2}", gbps(bytes, t_stat)),
            format!("{:.2}x", t_stat / t_dyn),
            format!("{:.1}%", p[0] + p[1] + p[2]),
        ]);
    }
    println!("\nExpected shape: the dynamic advantage tracks the share of cheap");
    println!("pipelines — large on NYX/Sim sets, near 1x on CESM-ATM (all-P4).");
}
