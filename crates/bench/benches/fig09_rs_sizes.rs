//! FIG9 — Fig. 9: `Reduce_scatter` against MPI and C-Coll across message
//! sizes on a fixed rank count (all five artifact kernels; speedups are
//! relative to the original MPI, as in the paper).

use datasets::App;
use hzccl::Kernel;
use hzccl_bench::{banner, env_usize, ranks, run_collective, scaled_rank_fields, CollOp, Table};

fn main() {
    banner("FIG9", "Fig. 9 — Reduce_scatter vs MPI/C-Coll across data sizes");
    let nranks = ranks();
    let eb = 1e-4;
    let base_mb = env_usize("HZ_NODE_MSG_MB", 4);
    let sizes_mb: Vec<usize> = [1usize, 2, 4, 8].iter().map(|k| k * base_mb).collect();
    println!("{nranks} ranks, RTM (Sim. Set. 1) data, abs eb = {eb:.0e}\n");

    let table = Table::new(&[
        ("Size/rank", 10),
        ("MPI (ms)", 10),
        ("C-Coll ST", 12),
        ("hZCCL ST", 12),
        ("C-Coll MT", 12),
        ("hZCCL MT", 12),
    ]);
    for &mb in &sizes_mb {
        let n = mb * (1 << 20) / 4;
        let base = App::SimSet1.generate(n, 0);
        let fields = scaled_rank_fields(&base, nranks);
        let t_mpi = run_collective(Kernel::MpiOriginal, CollOp::ReduceScatter, &fields, eb).0;
        let cell = |k: Kernel| {
            let t = run_collective(k, CollOp::ReduceScatter, &fields, eb).0;
            format!("{:.2}ms {:.2}x", t * 1e3, t_mpi / t)
        };
        table.row(&[
            format!("{mb} MB"),
            format!("{:.2}", t_mpi * 1e3),
            cell(Kernel::CCollSingleThread),
            cell(Kernel::HzcclSingleThread),
            cell(Kernel::CCollMultiThread),
            cell(Kernel::HzcclMultiThread),
        ]);
    }
    println!("\nExpected shape (paper Fig. 9): hZCCL > C-Coll > MPI at every size");
    println!("(paper: up to 1.58x ST / 4.04x MT over MPI), speedup growing with size.");
}
