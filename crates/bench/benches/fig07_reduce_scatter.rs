//! FIG7 — Fig. 7: hZCCL vs C-Coll `Reduce_scatter` on the two RTM datasets
//! (Simulation Settings 1 and 2), both modes, across data sizes.

use datasets::App;
use hzccl::Kernel;
use hzccl_bench::{banner, env_usize, ranks, run_collective, scaled_rank_fields, CollOp, Table};

fn main() {
    banner("FIG7", "Fig. 7 — Reduce_scatter: hZCCL vs C-Coll, RTM datasets");
    let nranks = ranks();
    let eb = 1e-4;
    let base_mb = env_usize("HZ_NODE_MSG_MB", 4);
    let sizes_mb: Vec<usize> = [1usize, 2, 4].iter().map(|k| k * base_mb).collect();

    for app in [App::SimSet1, App::SimSet2] {
        println!("--- {} ({nranks} ranks) ---", app.name());
        let table = Table::new(&[
            ("Size/rank", 10),
            ("C-Coll ST (ms)", 14),
            ("hZCCL ST (ms)", 13),
            ("ST speedup", 10),
            ("C-Coll MT (ms)", 14),
            ("hZCCL MT (ms)", 13),
            ("MT speedup", 10),
        ]);
        for &mb in &sizes_mb {
            let n = mb * (1 << 20) / 4;
            let base = app.generate(n, 0);
            let fields = scaled_rank_fields(&base, nranks);
            let t = |k: Kernel| run_collective(k, CollOp::ReduceScatter, &fields, eb).0;
            let c_st = t(Kernel::CCollSingleThread);
            let h_st = t(Kernel::HzcclSingleThread);
            let c_mt = t(Kernel::CCollMultiThread);
            let h_mt = t(Kernel::HzcclMultiThread);
            table.row(&[
                format!("{mb} MB"),
                format!("{:.3}", c_st * 1e3),
                format!("{:.3}", h_st * 1e3),
                format!("{:.2}x", c_st / h_st),
                format!("{:.3}", c_mt * 1e3),
                format!("{:.3}", h_mt * 1e3),
                format!("{:.2}x", c_mt / h_mt),
            ]);
        }
        println!();
    }
    println!("Expected shape (paper Fig. 7): hZCCL beats C-Coll in both modes");
    println!("(paper: up to 1.82x ST / 2.01x MT), improvement growing with size.");
}
