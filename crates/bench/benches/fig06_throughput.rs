//! FIG6 — Fig. 6: compression and decompression throughput (GB/s) of
//! fZ-light vs ompSZp across datasets and relative error bounds.

use datasets::App;
use fzlight::{Config, ErrorBound};
use hzccl_bench::{banner, field_elems, gbps, mt_threads, time_best, Table};

const RELS: [f64; 2] = [1e-3, 1e-4];

fn main() {
    banner("FIG6", "Fig. 6 — compression/decompression throughput (GB/s)");
    let n = field_elems();
    let bytes = n * 4;
    let threads = mt_threads();
    println!("threads = {threads}\n");
    let table = Table::new(&[
        ("App", 12),
        ("REL", 6),
        ("fZ Comp", 9),
        ("fZ Decomp", 9),
        ("oSZp Comp", 9),
        ("oSZp Dec", 9),
        ("C speedup", 9),
        ("D speedup", 9),
    ]);
    for app in App::ALL {
        let data = app.generate(n, 0);
        for rel in RELS {
            let cfg = Config::new(ErrorBound::Rel(rel)).with_threads(threads);

            let mut fz_stream = None;
            let t_fc = time_best(3, || {
                fz_stream = Some(fzlight::compress(&data, &cfg).expect("fz compress"));
            });
            let fz_stream = fz_stream.unwrap();
            let mut out = vec![0f32; n];
            let t_fd = time_best(3, || {
                fzlight::decompress_into(&fz_stream, &mut out).expect("fz decompress");
            });

            let mut o_stream = None;
            let t_oc = time_best(3, || {
                o_stream = Some(ompszp::compress(&data, &cfg).expect("ompszp compress"));
            });
            let o_stream = o_stream.unwrap();
            let t_od = time_best(3, || {
                ompszp::decompress_into(&o_stream, &mut out).expect("ompszp decompress");
            });

            table.row(&[
                app.name().into(),
                format!("{rel:.0e}"),
                format!("{:.2}", gbps(bytes, t_fc)),
                format!("{:.2}", gbps(bytes, t_fd)),
                format!("{:.2}", gbps(bytes, t_oc)),
                format!("{:.2}", gbps(bytes, t_od)),
                format!("{:.2}x", t_oc / t_fc),
                format!("{:.2}x", t_od / t_fd),
            ]);
        }
    }
    println!("\nExpected shape (paper Fig. 6): fZ-light beats ompSZp on both");
    println!("directions everywhere, with the decompression gap the largest");
    println!("(paper: up to 9.71x compression / 28.33x decompression).");
}
