//! EXT1 — extension beyond the paper's figures: `Reduce`-to-root and
//! long-message `Bcast` in all three flavours (the paper's framework claims
//! all collective computation operations; these are the next two most used).

use datasets::App;
use hzccl::collectives::{self, CollectiveOpts};
use hzccl::{paper_model, Mode, Variant};
use hzccl_bench::{banner, env_usize, scaled_rank_fields, Table};
use netsim::{ComputeTiming, SimBuilder};

fn main() {
    banner("EXT1", "extension — Reduce-to-root and Bcast across flavours");
    let nranks = env_usize("HZ_RANKS", 16);
    let n = env_usize("HZ_NODE_MSG_MB", 4) * (1 << 20) / 4;
    let eb = 1e-4;
    let base = App::SimSet1.generate(n, 0);
    let fields = scaled_rank_fields(&base, nranks);
    let mode = Mode::MultiThread(18);

    let timing = |v: Variant| ComputeTiming::Modeled(paper_model(v, mode));
    let run = |which: usize, op: usize| -> f64 {
        let variant = [Variant::Mpi, Variant::CColl, Variant::Hzccl][which];
        let opts = CollectiveOpts::for_variant(variant, eb).with_mode(mode);
        let cluster = SimBuilder::new(nranks).timing(timing(variant));
        let stats = cluster
            .run(|comm| {
                let data = &fields[comm.rank()];
                if op == 0 {
                    collectives::reduce(comm, data, &opts).expect("reduce");
                } else {
                    // the unified API takes a full-length buffer on every rank
                    collectives::bcast(comm, data, &opts).expect("bcast");
                }
            })
            .expect_clean()
            .stats;
        stats.makespan
    };

    for (op, name) in [(0usize, "Reduce(sum) to root"), (1, "Bcast")] {
        println!("--- {name} ({nranks} ranks, {} MB/rank) ---", (n * 4) >> 20);
        let table = Table::new(&[("Flavour", 10), ("time (ms)", 10), ("speedup vs MPI", 14)]);
        let t_mpi = run(0, op);
        table.row(&["MPI".into(), format!("{:.2}", t_mpi * 1e3), "1.00x".into()]);
        for (which, label) in [(1usize, "C-Coll"), (2, "hZCCL")] {
            let t = run(which, op);
            table.row(&[label.into(), format!("{:.2}", t * 1e3), format!("{:.2}x", t_mpi / t)]);
        }
        println!();
    }
    println!("Expected shape: hZCCL >= C-Coll > MPI for Reduce (homomorphic rounds");
    println!("+ no gather recompression); for Bcast both compressed flavours");
    println!("collapse to 'compress once, ship compressed' and tie near ratio x.");
}
