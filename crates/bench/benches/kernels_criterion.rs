//! Criterion microbenchmarks of the hot kernels: block codec, compressor
//! end-to-end, homomorphic sum vs DOC reduce, and the ompSZp baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use datasets::App;
use fzlight::{codec, Config, ErrorBound};
use hzdyn::ReduceOp;
use std::hint::black_box;

const FIELD: usize = 1 << 20; // 4 MiB of f32 — fast enough for criterion

fn bench_codec(c: &mut Criterion) {
    let deltas: Vec<i64> = (0..32).map(|i| (i * 37 - 500) as i64).collect();
    let mut encoded = Vec::new();
    codec::encode_deltas(&deltas, &mut encoded).unwrap();

    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Bytes(32 * 8));
    g.bench_function("encode_block_32", |b| {
        let mut out = Vec::with_capacity(64);
        b.iter(|| {
            out.clear();
            codec::encode_deltas(black_box(&deltas), &mut out).unwrap();
            black_box(&out);
        })
    });
    g.bench_function("decode_block_32", |b| {
        let mut out = [0i64; 32];
        b.iter(|| {
            codec::decode_block(black_box(&encoded), &mut out).unwrap();
            black_box(&out);
        })
    });
    g.finish();
}

fn bench_compressors(c: &mut Criterion) {
    let data = App::Hurricane.generate(FIELD, 0);
    let cfg = Config::new(ErrorBound::Abs(1e-4));
    let stream = fzlight::compress(&data, &cfg).unwrap();
    let ostream = ompszp::compress(&data, &cfg).unwrap();
    let mut out = vec![0f32; FIELD];

    let mut g = c.benchmark_group("compressor");
    g.sample_size(20);
    g.throughput(Throughput::Bytes((FIELD * 4) as u64));
    g.bench_function("fzlight_compress", |b| {
        b.iter(|| black_box(fzlight::compress(black_box(&data), &cfg).unwrap()))
    });
    g.bench_function("fzlight_decompress", |b| {
        b.iter(|| fzlight::decompress_into(black_box(&stream), &mut out).unwrap())
    });
    g.bench_function("fzlight_compress_unfused", |b| {
        b.iter(|| black_box(fzlight::compress_unfused(black_box(&data), &cfg).unwrap()))
    });
    g.bench_function("ompszp_compress", |b| {
        b.iter(|| black_box(ompszp::compress(black_box(&data), &cfg).unwrap()))
    });
    g.bench_function("ompszp_decompress", |b| {
        b.iter(|| ompszp::decompress_into(black_box(&ostream), &mut out).unwrap())
    });
    g.finish();
}

fn bench_homomorphic(c: &mut Criterion) {
    let a = App::Hurricane.generate(FIELD, 0);
    let b_ = App::Hurricane.generate(FIELD, 1);
    let cfg = Config::new(ErrorBound::Abs(1e-4));
    let ca = fzlight::compress(&a, &cfg).unwrap();
    let cb = fzlight::compress(&b_, &cfg).unwrap();

    let mut g = c.benchmark_group("homomorphic");
    g.sample_size(20);
    g.throughput(Throughput::Bytes((2 * FIELD * 4) as u64));
    g.bench_function("hz_dynamic_sum", |b| {
        b.iter(|| black_box(hzdyn::homomorphic_sum(black_box(&ca), black_box(&cb)).unwrap()))
    });
    g.bench_function("hz_static_sum", |b| {
        b.iter(|| {
            black_box(hzdyn::homomorphic_sum_static(black_box(&ca), black_box(&cb)).unwrap())
        })
    });
    g.bench_function("doc_reduce", |b| {
        b.iter(|| {
            black_box(hzdyn::doc_reduce(black_box(&ca), black_box(&cb), ReduceOp::Sum).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_codec, bench_compressors, bench_homomorphic);
criterion_main!(benches);
