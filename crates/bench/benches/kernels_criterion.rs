//! Microbenchmarks of the hot kernels: block codec, compressor end-to-end,
//! homomorphic sum vs DOC reduce, and the ompSZp baseline.
//!
//! Hand-rolled harness (best-of-k timing via `hzccl_bench::time_best`) so the
//! workspace builds offline with no external benchmarking crate; the file
//! keeps its historical `kernels_criterion` target name so existing
//! EXPERIMENTS.md invocations still work.

use datasets::App;
use fzlight::{codec, Config, ErrorBound};
use hzccl_bench::{banner, gbps, time_best, Table};
use hzdyn::ReduceOp;
use std::hint::black_box;

const FIELD: usize = 1 << 20; // 4 MiB of f32 — fast enough for a smoke bench

fn main() {
    banner("kernels", "hot-kernel microbenchmarks (best of k runs)");
    let table = Table::new(&[("kernel", 26), ("best (us)", 12), ("GB/s", 10)]);

    let report = |name: &str, bytes: usize, secs: f64| {
        table.row(&[
            name.to_string(),
            format!("{:.2}", secs * 1e6),
            format!("{:.2}", gbps(bytes, secs)),
        ]);
    };

    // --- block codec ------------------------------------------------------
    let deltas: Vec<i64> = (0..32).map(|i| (i * 37 - 500) as i64).collect();
    let mut encoded = Vec::new();
    codec::encode_deltas(&deltas, &mut encoded).unwrap();

    let mut out_buf = Vec::with_capacity(64);
    let t = time_best(2000, || {
        out_buf.clear();
        codec::encode_deltas(black_box(&deltas), &mut out_buf).unwrap();
        black_box(&out_buf);
    });
    report("codec/encode_block_32", 32 * 8, t);

    let mut out32 = [0i64; 32];
    let t = time_best(2000, || {
        codec::decode_block(black_box(&encoded), &mut out32).unwrap();
        black_box(&out32);
    });
    report("codec/decode_block_32", 32 * 8, t);

    // --- compressors ------------------------------------------------------
    let data = App::Hurricane.generate(FIELD, 0);
    let cfg = Config::new(ErrorBound::Abs(1e-4));
    let stream = fzlight::compress(&data, &cfg).unwrap();
    let ostream = ompszp::compress(&data, &cfg).unwrap();
    let mut out = vec![0f32; FIELD];
    let field_bytes = FIELD * 4;

    let t = time_best(10, || {
        black_box(fzlight::compress(black_box(&data), &cfg).unwrap());
    });
    report("compressor/fzlight_compress", field_bytes, t);

    let t = time_best(10, || {
        fzlight::decompress_into(black_box(&stream), &mut out).unwrap();
    });
    report("compressor/fzlight_decompress", field_bytes, t);

    let t = time_best(10, || {
        black_box(fzlight::compress_unfused(black_box(&data), &cfg).unwrap());
    });
    report("compressor/fzlight_unfused", field_bytes, t);

    let t = time_best(10, || {
        black_box(ompszp::compress(black_box(&data), &cfg).unwrap());
    });
    report("compressor/ompszp_compress", field_bytes, t);

    let t = time_best(10, || {
        ompszp::decompress_into(black_box(&ostream), &mut out).unwrap();
    });
    report("compressor/ompszp_decompress", field_bytes, t);

    // --- homomorphic processing vs DOC ------------------------------------
    let a = App::Hurricane.generate(FIELD, 0);
    let b = App::Hurricane.generate(FIELD, 1);
    let ca = fzlight::compress(&a, &cfg).unwrap();
    let cb = fzlight::compress(&b, &cfg).unwrap();
    let pair_bytes = 2 * field_bytes;

    let t = time_best(10, || {
        black_box(hzdyn::homomorphic_sum(black_box(&ca), black_box(&cb)).unwrap());
    });
    report("homomorphic/hz_dynamic_sum", pair_bytes, t);

    let t = time_best(10, || {
        black_box(hzdyn::homomorphic_sum_static(black_box(&ca), black_box(&cb)).unwrap());
    });
    report("homomorphic/hz_static_sum", pair_bytes, t);

    let t = time_best(10, || {
        black_box(hzdyn::doc_reduce(black_box(&ca), black_box(&cb), ReduceOp::Sum).unwrap());
    });
    report("homomorphic/doc_reduce", pair_bytes, t);
}
