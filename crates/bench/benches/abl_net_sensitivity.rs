//! ABL4 — ablation: network-model sensitivity. The collective results hinge
//! on the ratio of compression throughput to effective wire throughput; this
//! sweep runs the Allreduce comparison under three fabrics (calibrated
//! effective goodput, idealized 100 Gbps line rate, and a slow 10x-congested
//! fabric) to expose where the compression-acceleration crossover sits.

use datasets::App;
use hzccl::collectives::{self, CollectiveOpts};
use hzccl::{paper_model, Mode, Variant};
use hzccl_bench::{banner, env_usize, scaled_rank_fields, Table};
use netsim::{ComputeTiming, NetConfig, SimBuilder};

fn main() {
    banner("ABL4", "ablation — network-model sensitivity of the Allreduce comparison");
    let nranks = env_usize("HZ_RANKS", 16);
    let n = env_usize("HZ_NODE_MSG_MB", 4) * (1 << 20) / 4;
    let eb = 1e-4;
    let base = App::SimSet1.generate(n, 0);
    let fields = scaled_rank_fields(&base, nranks);
    let mode = Mode::MultiThread(18);

    let nets: [(&str, NetConfig); 3] = [
        ("effective goodput (default)", NetConfig::default()),
        ("100 Gbps line rate", NetConfig::opa_line_rate()),
        (
            "congested fabric (10x slower)",
            NetConfig { latency_s: 3e-6, bandwidth_gbps: 1.2, congestion: 0.3 },
        ),
    ];
    let table =
        Table::new(&[("Fabric", 30), ("MPI (ms)", 10), ("C-Coll MT", 12), ("hZCCL MT", 12)]);
    for (label, net) in nets {
        let run = |which: usize| -> f64 {
            let variant = [Variant::Mpi, Variant::CColl, Variant::Hzccl][which];
            let opts = CollectiveOpts::for_variant(variant, eb).with_mode(mode);
            let timing = ComputeTiming::Modeled(paper_model(variant, mode));
            let cluster = SimBuilder::new(nranks).net(net).timing(timing);
            let stats = cluster
                .run(|comm| {
                    let data = &fields[comm.rank()];
                    collectives::allreduce(comm, data, &opts).expect("allreduce");
                })
                .expect_clean()
                .stats;
            stats.makespan
        };
        let t_mpi = run(0);
        let t_cc = run(1);
        let t_hz = run(2);
        table.row(&[
            label.into(),
            format!("{:.2}", t_mpi * 1e3),
            format!("{:.2}ms {:.2}x", t_cc * 1e3, t_mpi / t_cc),
            format!("{:.2}ms {:.2}x", t_hz * 1e3, t_mpi / t_hz),
        ]);
    }
    println!("\nExpected shape: the slower the effective fabric, the bigger the");
    println!("compression win; on an ideal uncongested line rate the advantage");
    println!("narrows (and can invert for fast networks + slow compressors) —");
    println!("the crossover the costmodel crate expresses in closed form.");
}
