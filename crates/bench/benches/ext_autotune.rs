//! EXT3 — extension: the autotuner across the message-size sweep. A static
//! flavour choice is only right in one regime: recursive doubling wins tiny
//! messages, the homomorphic ring wins large compressible ones, and plain
//! MPI wins when data stops compressing. `Variant::Auto` should track the
//! best static flavour at *every* point once `hzc tune`-style measurements
//! populate its cache — and stay close even cold, on the analytical model
//! alone.
//!
//! Two passes per size: (1) measure every static candidate and feed the
//! tuner (`Engine::observe_run`, exactly what `hzc tune` does), (2) run the
//! auto front-end and compare its makespan against the best and worst
//! static.

use datasets::App;
use hzccl::collectives::{self, CollectiveOpts};
use hzccl::{auto, CollectiveConfig, Mode};
use hzccl_bench::{banner, env_usize, Table};
use netsim::{ComputeTiming, NetConfig, SimBuilder, TraceConfig};
use tuner::{Engine, Op, Plan, ScenarioSpec, ThreadMode};

/// Execute one static allreduce plan; returns the cluster outcomes.
fn run_static(
    nranks: usize,
    fields: &[Vec<f32>],
    plan: &Plan,
    eb: f64,
    timing: ComputeTiming,
) -> (f64, netsim::RunReport<()>) {
    use tuner::{Algo, Flavor};
    let mode = match plan.mode {
        ThreadMode::St => Mode::SingleThread,
        ThreadMode::Mt(k) => Mode::MultiThread(k),
    };
    let cluster = SimBuilder::new(nranks)
        .net(NetConfig::default())
        .timing(timing)
        .trace(TraceConfig::default());
    let report = cluster
        .run(|comm| {
            let data = &fields[comm.rank()];
            match (plan.flavor, plan.algo) {
                (Flavor::Mpi, Algo::Rd) => {
                    hzccl::rd::allreduce_rd(comm, data, mode.threads());
                }
                (Flavor::Hzccl, Algo::Rd) => {
                    let cfg = CollectiveConfig { eb, block_len: plan.block_len, mode, res: None };
                    hzccl::rd::allreduce_rd_hz(comm, data, &cfg).expect("hz rd");
                }
                (flavor, _) => {
                    let variant = match flavor {
                        Flavor::Mpi => hzccl::Variant::Mpi,
                        Flavor::CColl => hzccl::Variant::CColl,
                        Flavor::Hzccl => hzccl::Variant::Hzccl,
                    };
                    // honour the full plan, including its segment count
                    let opts = CollectiveOpts::for_variant(variant, eb)
                        .with_mode(mode)
                        .with_block_len(plan.block_len)
                        .with_segments(plan.segments);
                    collectives::allreduce(comm, data, &opts).expect("static plan");
                }
            }
        })
        .expect_clean();
    (report.stats.makespan, report)
}

fn main() {
    banner("EXT3", "extension — autotuned Allreduce vs every static flavour");
    let nranks = env_usize("HZ_RANKS", 16);
    let eb = 1e-4;
    let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
    let mut engine = Engine::paper();

    println!("{nranks} ranks, paper ST calibration, sim2 data; tune pass feeds the cache\n");
    let table = Table::new(&[
        ("Size/rank", 10),
        ("best static (ms)", 16),
        ("worst static (ms)", 17),
        ("auto (ms)", 10),
        ("auto runs", 16),
        ("vs best", 8),
    ]);

    for kb in [1usize, 16, 64, 256, 1024, 4096] {
        let elems = (kb * 1024 / 4).max(nranks);
        let base = App::SimSet2.generate(elems, 7);
        let fields: Vec<Vec<f32>> = (0..nranks)
            .map(|r| {
                let k = 1.0 + 0.001 * r as f32;
                base.iter().map(|&v| v * k).collect()
            })
            .collect();

        // ratio probe, as `hzc tune` does offline
        let sample = &base[..base.len().min(auto::PROBE_ELEMS)];
        let fz = fzlight::Config::new(fzlight::ErrorBound::Abs(eb));
        let ratio = fzlight::compress(sample, &fz)
            .map(|s| (sample.len() * 4) as f64 / s.compressed_size().max(1) as f64)
            .unwrap_or(1.0)
            .max(1.0);
        let spec = ScenarioSpec::new(Op::Allreduce, elems, nranks, eb, 32, ratio);

        // pass 1: every static candidate, measured and absorbed
        let mut best = f64::INFINITY;
        let mut worst = 0f64;
        for plan in engine.candidates(&spec) {
            let timing = ComputeTiming::Modeled(engine.calib.model(plan.flavor, plan.mode));
            let (makespan, report) = run_static(nranks, &fields, &plan, eb, timing);
            engine.observe_run(&spec, &plan, &report);
            best = best.min(makespan);
            worst = worst.max(makespan);
        }

        // pass 2: the auto front-end in the iterative-workload regime — one
        // cold call pays probe + plan agreement, then the clock resets and
        // the warm (memoized) call is what gets timed, exactly how a solver
        // loop would amortize the decision.
        let decision = engine.decide(&spec);
        let timing =
            ComputeTiming::Modeled(engine.calib.model(decision.plan.flavor, decision.plan.mode));
        let cluster = SimBuilder::new(nranks).net(NetConfig::default()).timing(timing);
        let stats = cluster
            .run(|comm| {
                let mut session = auto::Session::new();
                session.allreduce(comm, &fields[comm.rank()], &cfg, &engine).expect("auto cold");
                comm.reset_clock();
                session.allreduce(comm, &fields[comm.rank()], &cfg, &engine).expect("auto warm");
            })
            .expect_clean()
            .stats;
        let t_auto = stats.makespan;

        table.row(&[
            format!("{kb} KB"),
            format!("{:.3}", best * 1e3),
            format!("{:.3}", worst * 1e3),
            format!("{:.3}", t_auto * 1e3),
            decision.plan.label(),
            format!("{:+.1}%", (t_auto / best - 1.0) * 100.0),
        ]);
    }

    println!("\nExpected shape: 'auto runs' flips from rd at small sizes to the");
    println!("homomorphic ring at large ones, and 'vs best' stays within a few");
    println!("percent everywhere — the tuner never pays the worst-static cost a");
    println!("fixed flavour choice would hit on the wrong side of a crossover.");
}
