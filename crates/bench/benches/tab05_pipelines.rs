//! TAB5 — Table V: hZ-dynamic throughput and pipeline-selection percentages
//! when homomorphically reducing two fields/snapshots per application at a
//! 1e-3 relative error bound. Speedups are against the fZ-light DOC
//! workflow, as in the paper.

use datasets::App;
use fzlight::{Config, ErrorBound};
use hzccl_bench::{banner, field_elems, gbps, mt_threads, time_best, Table};
use hzdyn::ReduceOp;

fn main() {
    banner("TAB5", "Table V — dynamic pipeline selection & throughput (REL 1e-3)");
    let n = field_elems();
    let threads = mt_threads();
    // "overall" throughput convention: two uncompressed inputs processed
    let bytes = 2 * n * 4;
    let table = Table::new(&[
        ("App", 12),
        ("Speedup", 8),
        ("hZ Thru GB/s", 12),
        ("P1", 8),
        ("P2", 8),
        ("P3", 8),
        ("P4", 8),
    ]);
    for app in App::ALL {
        let a = app.generate(n, 0);
        let b = app.generate(n, 1);
        // both snapshots must share one absolute bound for compatibility:
        // resolve 1e-3 REL against the first field, as the paper fixes the
        // bound per dataset
        let eb = ErrorBound::Rel(1e-3).resolve(&a).expect("bound");
        let cfg = Config::new(ErrorBound::Abs(eb)).with_threads(threads);
        let ca = fzlight::compress(&a, &cfg).expect("compress a");
        let cb = fzlight::compress(&b, &cfg).expect("compress b");

        let (_, stats) = hzdyn::homomorphic_sum_with_stats(&ca, &cb).expect("hz");
        let t_hz = time_best(5, || {
            std::hint::black_box(hzdyn::homomorphic_sum(&ca, &cb).expect("hz"));
        });
        let t_doc = time_best(3, || {
            std::hint::black_box(hzdyn::doc_reduce(&ca, &cb, ReduceOp::Sum).expect("doc"));
        });
        let p = stats.percentages();
        table.row(&[
            app.name().into(),
            format!("{:.2}x", t_doc / t_hz),
            format!("{:.2}", gbps(bytes, t_hz)),
            format!("{:.2}%", p[0]),
            format!("{:.2}%", p[1]),
            format!("{:.2}%", p[2]),
            format!("{:.2}%", p[3]),
        ]);
    }
    println!("\nExpected shape (paper Table V): NYX/Sim.2 dominated by the cheap");
    println!("pipelines (1-3) with the biggest speedups; CESM-ATM dominated by");
    println!("pipeline 4 with the smallest (but still >1x) speedup.");
}
