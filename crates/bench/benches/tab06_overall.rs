//! TAB6 — Table VI: overall reduce-operation performance of hZ-dynamic vs
//! the traditional fZ-light DOC workflow across datasets and relative error
//! bounds, with quality (NRMSE) and ratio of the reduced output.

use datasets::{App, Quality};
use fzlight::{Config, ErrorBound};
use hzccl_bench::{banner, field_elems, gbps, mt_threads, time_best, Table};
use hzdyn::ReduceOp;

const RELS: [f64; 4] = [1e-1, 1e-2, 1e-3, 1e-4];

fn main() {
    banner("TAB6", "Table VI — hZ-dynamic vs fZ-light (DOC) overall performance");
    let n = field_elems();
    let bytes = 2 * n * 4; // two inputs processed per reduce
    let threads = mt_threads();
    let table = Table::new(&[
        ("App", 12),
        ("REL", 6),
        ("hZ GB/s", 9),
        ("hZ Ratio", 9),
        ("hZ NRMSE", 9),
        ("DOC GB/s", 9),
        ("DOC Ratio", 9),
        ("DOC NRMSE", 9),
        ("Speedup", 8),
    ]);
    for app in App::ALL {
        let a = app.generate(n, 0);
        let b = app.generate(n, 1);
        let exact: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        for rel in RELS {
            let eb = ErrorBound::Rel(rel).resolve(&a).expect("bound");
            let cfg = Config::new(ErrorBound::Abs(eb)).with_threads(threads);
            let ca = fzlight::compress(&a, &cfg).expect("compress a");
            let cb = fzlight::compress(&b, &cfg).expect("compress b");

            let hz = hzdyn::homomorphic_sum(&ca, &cb).expect("hz");
            let t_hz = time_best(3, || {
                std::hint::black_box(hzdyn::homomorphic_sum(&ca, &cb).expect("hz"));
            });
            let hz_out = fzlight::decompress(&hz).expect("hz d");
            let hz_q = Quality::compare(&exact, &hz_out);

            let doc = hzdyn::doc_reduce(&ca, &cb, ReduceOp::Sum).expect("doc");
            let t_doc = time_best(3, || {
                std::hint::black_box(hzdyn::doc_reduce(&ca, &cb, ReduceOp::Sum).expect("doc"));
            });
            let doc_out = fzlight::decompress(&doc).expect("doc d");
            let doc_q = Quality::compare(&exact, &doc_out);

            table.row(&[
                app.name().into(),
                format!("{rel:.0e}"),
                format!("{:.2}", gbps(bytes, t_hz)),
                format!("{:.2}", hz.ratio()),
                format!("{:.1e}", hz_q.nrmse),
                format!("{:.2}", gbps(bytes, t_doc)),
                format!("{:.2}", doc.ratio()),
                format!("{:.1e}", doc_q.nrmse),
                format!("{:.2}x", t_doc / t_hz),
            ]);
        }
    }
    println!("\nExpected shape (paper Table VI): hZ-dynamic beats DOC on throughput");
    println!("everywhere (paper: up to 36.5x) with equal-or-better NRMSE, since it");
    println!("skips the DOC recompression's extra quantization.");
}
