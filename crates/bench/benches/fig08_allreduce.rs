//! FIG8 — Fig. 8: hZCCL vs C-Coll `Allreduce` on the two RTM datasets, both
//! modes, across data sizes — including the unfused-hZCCL ablation series
//! (DESIGN.md ablation 4: the Sec. III-C.2 stage fusion).

use datasets::App;
use hzccl::collectives::{self, CollectiveOpts};
use hzccl::{ccoll, CollectiveConfig, Kernel, Mode, Variant};
use hzccl_bench::{
    banner, env_usize, mt_threads, net, ranks, scaled_rank_fields, timing_for, CollOp, Table,
};
use netsim::SimBuilder;

fn main() {
    banner("FIG8", "Fig. 8 — Allreduce: hZCCL vs C-Coll (+ unfused ablation)");
    let nranks = ranks();
    let eb = 1e-4;
    let base_mb = env_usize("HZ_NODE_MSG_MB", 4);
    let sizes_mb: Vec<usize> = [1usize, 2, 4].iter().map(|k| k * base_mb).collect();
    let mt = mt_threads();

    for app in [App::SimSet1, App::SimSet2] {
        println!("--- {} ({nranks} ranks) ---", app.name());
        let table = Table::new(&[
            ("Size/rank", 10),
            ("C-Coll ST", 10),
            ("hZCCL ST", 10),
            ("ST spd", 8),
            ("C-Coll MT", 10),
            ("hZCCL MT", 10),
            ("MT spd", 8),
            ("hZ unfused MT", 13),
        ]);
        for &mb in &sizes_mb {
            let n = mb * (1 << 20) / 4;
            let base = app.generate(n, 0);
            let fields = scaled_rank_fields(&base, nranks);
            let t = |k: Kernel| hzccl_bench::run_collective(k, CollOp::Allreduce, &fields, eb).0;
            let c_st = t(Kernel::CCollSingleThread);
            let h_st = t(Kernel::HzcclSingleThread);
            let c_mt = t(Kernel::CCollMultiThread);
            let h_mt = t(Kernel::HzcclMultiThread);

            // unfused ablation (MT): hZCCL RS + C-Coll-style Allgather
            let mode = Mode::MultiThread(mt);
            let timing = timing_for(Variant::Hzccl, mode, &fields[0][..n.min(1 << 21)], eb);
            let cluster = SimBuilder::new(nranks).net(net()).timing(timing);
            let cfg = CollectiveConfig::new(eb, mode);
            let opts = CollectiveOpts::hz(eb).with_mode(mode);
            let stats = cluster
                .run(|comm| {
                    let data = &fields[comm.rank()];
                    let own = collectives::reduce_scatter(comm, data, &opts).expect("rs");
                    ccoll::allgather(comm, &own, data.len(), &cfg).expect("ag");
                })
                .expect_clean()
                .stats;
            let h_unfused = stats.makespan;

            table.row(&[
                format!("{mb} MB"),
                format!("{:.2}ms", c_st * 1e3),
                format!("{:.2}ms", h_st * 1e3),
                format!("{:.2}x", c_st / h_st),
                format!("{:.2}ms", c_mt * 1e3),
                format!("{:.2}ms", h_mt * 1e3),
                format!("{:.2}x", c_mt / h_mt),
                format!("{:.2}ms", h_unfused * 1e3),
            ]);
        }
        println!();
    }
    println!("Expected shape (paper Fig. 8): hZCCL beats C-Coll in both modes");
    println!("(paper: 1.55-1.78x ST, 2.00-2.10x MT); the fused Allreduce beats");
    println!("the unfused ablation.");
}
