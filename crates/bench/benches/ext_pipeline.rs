//! EXT4 — extension: the segmented pipelined ring. Splitting each ring-step
//! block into `S` segments lets the compute of segment `k` (HPR for hZCCL,
//! DPR+CPT for C-Coll, pack/unpack for MPI) overlap the wire time of segment
//! `k+1`; this sweep measures the virtual-time speedup across segment
//! counts, checks the cost model's predicted optimum, and verifies the
//! schedule is bit-identical to the phase-serial ring at every `S`.

use datasets::App;
use hzccl::collectives::{self, CollectiveOpts};
use hzccl::{paper_model, Mode, Variant};
use hzccl_bench::{banner, env_usize, net, scaled_rank_fields, Table};
use netsim::{ComputeTiming, SimBuilder};

fn main() {
    banner("EXT4", "extension — segmented pipelined ring vs phase-serial");
    let nranks = env_usize("HZ_RANKS", 16);
    let n = env_usize("HZ_NODE_MSG_MB", 4) * (1 << 20) / 4;
    let eb = 1e-4;
    let mode = Mode::MultiThread(18);
    let base = App::SimSet1.generate(n, 0);
    let fields = scaled_rank_fields(&base, nranks);

    // cost-model prediction for the hz ring at this operating point
    let thr = paper_model(Variant::Hzccl, mode);
    let fz = fzlight::Config::new(fzlight::ErrorBound::Abs(eb));
    let ratio = fzlight::compress(&base[..n.min(1 << 20)], &fz)
        .map(|s| (n.min(1 << 20) * 4) as f64 / s.compressed_size().max(1) as f64)
        .unwrap_or(1.0)
        .max(1.0);
    let scen = costmodel::Scenario { nranks, message_bytes: n * 4, ratio, net: net(), thr };
    let s_star = costmodel::optimal_segments_hzccl(&scen);

    println!(
        "{nranks} ranks, {} MiB/rank, ratio ~{ratio:.1}; model-optimal S* = {s_star}\n",
        (n * 4) >> 20
    );

    let run = |variant: Variant, segments: usize| -> (f64, Vec<f32>) {
        let opts = CollectiveOpts::for_variant(variant, eb).with_mode(mode).with_segments(segments);
        let timing = ComputeTiming::Modeled(paper_model(variant, mode));
        let cluster = SimBuilder::new(nranks).net(net()).timing(timing);
        let report = cluster
            .run(|comm| {
                collectives::allreduce(comm, &fields[comm.rank()], &opts).expect("allreduce")
            })
            .expect_clean();
        (report.stats.makespan, report.values().into_iter().next().unwrap())
    };

    for variant in [Variant::Mpi, Variant::CColl, Variant::Hzccl] {
        let label = match variant {
            Variant::Mpi => "MPI (no compression)",
            Variant::CColl => "C-Coll (DOC)",
            _ => "hZCCL (homomorphic)",
        };
        println!("--- {label} ---");
        let table = Table::new(&[
            ("Segments", 9),
            ("time (ms)", 10),
            ("speedup vs S=1", 14),
            ("bit-identical", 13),
        ]);
        let (t_serial, ref_out) = run(variant, 1);
        table.row(&["1".into(), format!("{:.3}", t_serial * 1e3), "1.00x".into(), "ref".into()]);
        for segments in [2usize, 4, 8, 16] {
            let (t, out) = run(variant, segments);
            table.row(&[
                format!("{segments}"),
                format!("{:.3}", t * 1e3),
                format!("{:.2}x", t_serial / t),
                if out == ref_out { "yes".into() } else { "NO".into() },
            ]);
            assert!(out == ref_out, "{label}: S={segments} changed the result bits");
        }
        println!();
    }

    // model-vs-simulation agreement for the hz ring
    let predicted = [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&s| (s, costmodel::allreduce_hzccl_pipelined(&scen, s)))
        .collect::<Vec<_>>();
    println!("cost-model hz predictions:");
    for (s, t) in &predicted {
        println!("  S={s:<3} {:.3} ms", t * 1e3);
    }
    println!("\nExpected shape: the speedup grows until the per-segment alpha cost");
    println!("eats the overlap win (steady state S*alpha + max(W, C)); the model's");
    println!("S* should land near the simulated sweet spot, and every row must");
    println!("report bit-identical results — segmentation only moves time, not bits.");
}
