//! ABL5 — the Sec. III-B.1 pipeline survey, measured: SZx-class
//! (prediction-free, constant-block) vs ompSZp vs fZ-light. Reproduces the
//! claims that (a) the SZx design point is the fastest, (b) its
//! constant-block reconstruction quality trails at comparable ratios, and
//! (c) fZ-light keeps cuSZp-class quality at SZx-class speed — the reason
//! the paper built it.

use datasets::{App, Quality};
use fzlight::{Config, ErrorBound};
use hzccl_bench::{banner, field_elems, gbps, mt_threads, time_best, Table};

fn main() {
    banner("ABL5", "ablation — SZx-class vs ompSZp vs fZ-light (speed & quality)");
    let n = field_elems();
    let bytes = n * 4;
    let threads = mt_threads();
    for app in [App::SimSet2, App::Hurricane] {
        println!("--- {} (REL 1e-3) ---", app.name());
        let data = app.generate(n, 0);
        let cfg = Config::new(ErrorBound::Rel(1e-3)).with_threads(threads);
        let table = Table::new(&[
            ("Compressor", 10),
            ("Ratio", 8),
            ("NRMSE", 10),
            ("PSNR", 8),
            ("Comp GB/s", 10),
            ("Dec GB/s", 10),
        ]);

        // szxlite
        let s = szxlite::compress(&data, &cfg).expect("szx");
        let t_c = time_best(3, || {
            std::hint::black_box(szxlite::compress(&data, &cfg).expect("szx"));
        });
        let mut out = vec![0f32; n];
        let t_d = time_best(3, || {
            szxlite::decompress_into(&s, &mut out).expect("szx d");
        });
        let q = Quality::compare(&data, &out);
        table.row(&[
            "szxlite".into(),
            format!("{:.2}", s.ratio()),
            format!("{:.2e}", q.nrmse),
            format!("{:.2}", q.psnr),
            format!("{:.2}", gbps(bytes, t_c)),
            format!("{:.2}", gbps(bytes, t_d)),
        ]);

        // ompszp
        let s = ompszp::compress(&data, &cfg).expect("oszp");
        let t_c = time_best(3, || {
            std::hint::black_box(ompszp::compress(&data, &cfg).expect("oszp"));
        });
        let t_d = time_best(3, || {
            ompszp::decompress_into(&s, &mut out).expect("oszp d");
        });
        let q = Quality::compare(&data, &out);
        table.row(&[
            "ompSZp".into(),
            format!("{:.2}", s.ratio()),
            format!("{:.2e}", q.nrmse),
            format!("{:.2}", q.psnr),
            format!("{:.2}", gbps(bytes, t_c)),
            format!("{:.2}", gbps(bytes, t_d)),
        ]);

        // fzlight
        let s = fzlight::compress(&data, &cfg).expect("fz");
        let t_c = time_best(3, || {
            std::hint::black_box(fzlight::compress(&data, &cfg).expect("fz"));
        });
        let t_d = time_best(3, || {
            fzlight::decompress_into(&s, &mut out).expect("fz d");
        });
        let q = Quality::compare(&data, &out);
        table.row(&[
            "fZ-light".into(),
            format!("{:.2}", s.ratio()),
            format!("{:.2e}", q.nrmse),
            format!("{:.2}", q.psnr),
            format!("{:.2}", gbps(bytes, t_c)),
            format!("{:.2}", gbps(bytes, t_d)),
        ]);
        println!();
    }
    println!("Expected shape (Sec. III-B.1): fZ-light matches or beats the");
    println!("SZx-class ratio AND quality while staying in its speed class;");
    println!("ompSZp (GPU-style parallelism on CPU) trails both on speed.");
}
