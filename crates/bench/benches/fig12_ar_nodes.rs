//! FIG12 — Fig. 12: `Allreduce` scalability across node counts
//! (2 → `HZ_MAX_RANKS`, default 512), speedups relative to the original MPI.

use datasets::App;
use hzccl::Kernel;
use hzccl_bench::{
    banner, env_usize, node_msg_elems, run_collective, scaled_rank_fields, CollOp, Table,
};

fn main() {
    banner("FIG12", "Fig. 12 — Allreduce scalability across node counts");
    let eb = 1e-4;
    let n = node_msg_elems();
    let max_ranks = env_usize("HZ_MAX_RANKS", 512);
    let mut counts = vec![];
    let mut c = 2usize;
    while c <= max_ranks {
        counts.push(c);
        c *= 4;
    }
    println!("per-rank message: {} MB, RTM (Sim. Set. 1) data\n", (n * 4) >> 20);

    let base = App::SimSet1.generate(n, 0);
    let table = Table::new(&[
        ("Nodes", 6),
        ("MPI (ms)", 10),
        ("C-Coll ST", 12),
        ("hZCCL ST", 12),
        ("C-Coll MT", 12),
        ("hZCCL MT", 12),
    ]);
    for &nranks in &counts {
        let fields = scaled_rank_fields(&base, nranks);
        let t_mpi = run_collective(Kernel::MpiOriginal, CollOp::Allreduce, &fields, eb).0;
        let cell = |k: Kernel| {
            let t = run_collective(k, CollOp::Allreduce, &fields, eb).0;
            format!("{:.2}ms {:.2}x", t * 1e3, t_mpi / t)
        };
        table.row(&[
            format!("{nranks}"),
            format!("{:.2}", t_mpi * 1e3),
            cell(Kernel::CCollSingleThread),
            cell(Kernel::HzcclSingleThread),
            cell(Kernel::CCollMultiThread),
            cell(Kernel::HzcclMultiThread),
        ]);
    }
    println!("\nExpected shape (paper Fig. 12): hZCCL sustains its advantage at");
    println!("every node count (paper: up to 2.12x ST / 6.77x MT; still 1.88x /");
    println!("5.58x at 512 nodes), since Allreduce output does not shrink with N.");
}
