//! FIG2 — Fig. 2: cost breakdown (DPR+CPT+CPR vs MPI vs OTHER) of the
//! C-Coll-accelerated ring Allreduce in single-thread and multi-thread
//! modes, on 16 ranks — plus the hZCCL breakdowns for contrast.

use datasets::App;
use hzccl::Kernel;
use hzccl_bench::{banner, env_usize, field_elems, run_collective, CollOp, Table};

fn main() {
    banner("FIG2", "Fig. 2 — Allreduce cost breakdown (C-Coll ST/MT), 16 ranks");
    let nranks = env_usize("HZ_RANKS", 16).max(2);
    let n = field_elems();
    let base = App::SimSet1.generate(n, 0);
    let fields = hzccl_bench::scaled_rank_fields(&base, nranks);
    let eb = 1e-4;

    let table = Table::new(&[
        ("Kernel", 24),
        ("DPR+CPT+CPR", 12),
        ("MPI", 8),
        ("OTHER", 8),
        ("makespan (ms)", 13),
    ]);
    for kernel in [
        Kernel::CCollSingleThread,
        Kernel::CCollMultiThread,
        Kernel::HzcclSingleThread,
        Kernel::HzcclMultiThread,
    ] {
        let (makespan, total) = run_collective(kernel, CollOp::Allreduce, &fields, eb);
        let (doc, mpi, other) = total.percentages();
        table.row(&[
            kernel.label().into(),
            format!("{doc:.2}%"),
            format!("{mpi:.2}%"),
            format!("{other:.2}%"),
            format!("{:.3}", makespan * 1e3),
        ]);
    }
    println!("\nExpected shape (paper Fig. 2): C-Coll ST ~78% DOC / ~22% MPI;");
    println!("C-Coll MT ~52% DOC / ~47% MPI; hZCCL shifts weight from DOC to MPI.");
}
