//! ABL3 — ablation: small-block length. The paper fixes 32 (cuSZp's GPU
//! block size); this sweep shows the ratio/throughput trade-off that
//! justifies it: shorter blocks adapt better (ratio) but pay more per-block
//! overhead (code bytes, dispatch), longer blocks amortize overhead but mix
//! unlike deltas under one code length.

use datasets::App;
use fzlight::{Config, ErrorBound};
use hzccl_bench::{banner, field_elems, gbps, mt_threads, time_best, Table};

fn main() {
    banner("ABL3", "ablation — small-block length sweep");
    let n = field_elems();
    let bytes = n * 4;
    let threads = mt_threads();
    for app in [App::Hurricane, App::SimSet2] {
        println!("--- {} (REL 1e-3) ---", app.name());
        let data = app.generate(n, 0);
        let table = Table::new(&[
            ("block_len", 9),
            ("Ratio", 8),
            ("Compress GB/s", 13),
            ("Decompress GB/s", 15),
            ("hZ sum GB/s", 11),
        ]);
        for block_len in [8usize, 16, 32, 64] {
            let cfg =
                Config::new(ErrorBound::Rel(1e-3)).with_threads(threads).with_block_len(block_len);
            let stream = fzlight::compress(&data, &cfg).expect("compress");
            let t_c = time_best(3, || {
                std::hint::black_box(fzlight::compress(&data, &cfg).expect("compress"));
            });
            let mut out = vec![0f32; n];
            let t_d = time_best(3, || {
                fzlight::decompress_into(&stream, &mut out).expect("decompress");
            });
            let t_h = time_best(3, || {
                std::hint::black_box(hzdyn::homomorphic_sum(&stream, &stream).expect("hz"));
            });
            table.row(&[
                format!("{block_len}"),
                format!("{:.2}", stream.ratio()),
                format!("{:.2}", gbps(bytes, t_c)),
                format!("{:.2}", gbps(bytes, t_d)),
                format!("{:.2}", gbps(2 * bytes, t_h)),
            ]);
        }
        println!();
    }
    println!("Expected shape: 32 sits at the knee — near-best throughput with");
    println!("ratio within a few percent of the best block length per dataset.");
}
