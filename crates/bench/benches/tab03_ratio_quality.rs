//! TAB3 — Table III: compression ratio and quality (NRMSE ± STD) of
//! fZ-light vs ompSZp across the five application datasets and relative
//! error bounds 1e-1..1e-4.

use datasets::{mean_std, App, Quality};
use fzlight::{Config, ErrorBound};
use hzccl_bench::{banner, field_elems, mt_threads, Table};

const RELS: [f64; 4] = [1e-1, 1e-2, 1e-3, 1e-4];
const FIELDS_PER_APP: u64 = 2;

fn main() {
    banner("TAB3", "Table III — ratio & NRMSE, fZ-light vs ompSZp");
    let n = field_elems();
    let threads = mt_threads();
    let table = Table::new(&[
        ("App", 12),
        ("REL", 6),
        ("fZ Ratio", 9),
        ("fZ NRMSE", 10),
        ("fZ STD", 9),
        ("oSZp Ratio", 10),
        ("oSZp NRMSE", 10),
        ("oSZp STD", 9),
    ]);
    for app in App::ALL {
        let fields: Vec<Vec<f32>> = (0..FIELDS_PER_APP).map(|seed| app.generate(n, seed)).collect();
        for rel in RELS {
            let cfg = Config::new(ErrorBound::Rel(rel)).with_threads(threads);
            let mut fz_ratio = Vec::new();
            let mut fz_nrmse = Vec::new();
            let mut o_ratio = Vec::new();
            let mut o_nrmse = Vec::new();
            for f in &fields {
                let s = fzlight::compress(f, &cfg).expect("fz compress");
                fz_ratio.push(s.ratio());
                let d = fzlight::decompress(&s).expect("fz decompress");
                fz_nrmse.push(Quality::compare(f, &d).nrmse);

                let s = ompszp::compress(f, &cfg).expect("ompszp compress");
                o_ratio.push(s.ratio());
                let d = ompszp::decompress(&s).expect("ompszp decompress");
                o_nrmse.push(Quality::compare(f, &d).nrmse);
            }
            let (fr, _) = mean_std(&fz_ratio);
            let (fn_, fs) = mean_std(&fz_nrmse);
            let (or, _) = mean_std(&o_ratio);
            let (on, os) = mean_std(&o_nrmse);
            table.row(&[
                app.name().into(),
                format!("{rel:.0e}"),
                format!("{fr:.2}"),
                format!("{fn_:.2e}"),
                format!("{fs:.0e}"),
                format!("{or:.2}"),
                format!("{on:.2e}"),
                format!("{os:.0e}"),
            ]);
        }
    }
    println!("\nExpected shape (paper Table III): fZ-light ratio >= ompSZp on all");
    println!("non-zero-dominated datasets, with the largest gaps on CESM-ATM/NYX;");
    println!("NRMSE columns are equal here by construction (shared quantizer).");
}
