//! PROJ — paper-scale projection: evaluate the Sec. III-C closed-form cost
//! equations at the paper's full configuration (646 MB messages, 2-512
//! Broadwell nodes, Omni-Path) with the paper-calibrated throughputs, and
//! print the projected Allreduce speedups over MPI.

use costmodel::{allreduce_ccoll, allreduce_hzccl, allreduce_mpi, Scenario};
use hzccl::{paper_model, Mode, Variant};
use hzccl_bench::{banner, Table};
use netsim::NetConfig;

fn main() {
    banner("PROJ", "paper-scale projection (646 MB, closed-form cost model)");
    let message_bytes = 646 << 20;
    let ratio = 7.18; // paper Table III, RTM-class data at 1e-4
    println!("message 646 MB/rank, compression ratio {ratio}, effective-goodput net model\n");

    let table = Table::new(&[
        ("Nodes", 6),
        ("MPI (s)", 9),
        ("C-Coll ST", 11),
        ("hZCCL ST", 11),
        ("C-Coll MT", 11),
        ("hZCCL MT", 11),
    ]);
    for nranks in [2usize, 8, 16, 64, 128, 256, 512] {
        let base = Scenario {
            nranks,
            message_bytes,
            ratio,
            net: NetConfig::default(),
            thr: paper_model(Variant::Mpi, Mode::SingleThread),
        };
        let t_mpi = allreduce_mpi(&base);
        let t = |variant: Variant, mode: Mode| -> f64 {
            let s = Scenario { thr: paper_model(variant, mode), ..base };
            match variant {
                Variant::CColl => allreduce_ccoll(&s),
                // Auto dispatches to a static flavour; at this size it is hz.
                Variant::Hzccl | Variant::Auto => allreduce_hzccl(&s),
                Variant::Mpi => allreduce_mpi(&s),
            }
        };
        let cell = |v: Variant, m: Mode| {
            let x = t(v, m);
            format!("{:.2}s {:.2}x", x, t_mpi / x)
        };
        table.row(&[
            format!("{nranks}"),
            format!("{t_mpi:.2}"),
            cell(Variant::CColl, Mode::SingleThread),
            cell(Variant::Hzccl, Mode::SingleThread),
            cell(Variant::CColl, Mode::MultiThread(18)),
            cell(Variant::Hzccl, Mode::MultiThread(18)),
        ]);
    }
    println!("\nExpected shape: speedups over MPI rise with node count toward the");
    println!("paper's 512-node observations (hZCCL ~1.9-2.1x ST, ~5.6-6.8x MT).");
}
