//! ABL2 — ablation: fused vs unfused quantization+prediction in fZ-light
//! (Sec. III-B.2's memory-traffic argument). The two produce byte-identical
//! streams; only throughput differs.

use datasets::App;
use fzlight::{Config, ErrorBound};
use hzccl_bench::{banner, field_elems, gbps, mt_threads, time_best, Table};

fn main() {
    banner("ABL2", "ablation — fused vs unfused quantization+prediction");
    let n = field_elems();
    let bytes = n * 4;
    let threads = mt_threads();
    let table =
        Table::new(&[("App", 12), ("Fused GB/s", 11), ("Unfused GB/s", 12), ("Fused/Unfused", 13)]);
    for app in App::ALL {
        let data = app.generate(n, 0);
        let cfg = Config::new(ErrorBound::Rel(1e-3)).with_threads(threads);
        let fused_stream = fzlight::compress(&data, &cfg).expect("fused");
        let unfused_stream = fzlight::compress_unfused(&data, &cfg).expect("unfused");
        assert_eq!(
            fused_stream.as_bytes(),
            unfused_stream.as_bytes(),
            "variants must produce identical streams"
        );
        let t_f = time_best(3, || {
            std::hint::black_box(fzlight::compress(&data, &cfg).expect("fused"));
        });
        let t_u = time_best(3, || {
            std::hint::black_box(fzlight::compress_unfused(&data, &cfg).expect("unfused"));
        });
        table.row(&[
            app.name().into(),
            format!("{:.2}", gbps(bytes, t_f)),
            format!("{:.2}", gbps(bytes, t_u)),
            format!("{:.2}x", t_u / t_f),
        ]);
    }
    println!("\nExpected shape: fusion wins by cutting one full-size intermediate");
    println!("array's worth of memory traffic (and its allocation).");
}
