//! TAB7 — Table VII: image-stacking use case. Stacking single observations
//! into a high-resolution image is an `Allreduce` [34]; this bench reports
//! speedups over MPI and the CPR+CPT / MPI / Others breakdown for hZCCL and
//! C-Coll in both modes, plus the stacked image's PSNR/NRMSE.

use datasets::{App, Quality};
use hzccl::collectives::{self, CollectiveOpts};
use hzccl::Kernel;
use hzccl_bench::{banner, env_usize, run_collective, CollOp, Table};

/// Per-rank observation: the shared scene plus rank-seeded sensor noise.
fn observation(base: &[f32], rank: usize) -> Vec<f32> {
    let mut h = (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xABCD;
    base.iter()
        .map(|&v| {
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            h ^= h >> 33;
            let noise = ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 0.3;
            v + noise
        })
        .collect()
}

fn main() {
    banner("TAB7", "Table VII — image stacking (Allreduce use case)");
    let nranks = env_usize("HZ_RANKS", 64);
    let side = env_usize("HZ_IMG_SIDE", 1024);
    let n = side * side;
    let eb = 1e-4;
    println!("{nranks} ranks stacking {side}x{side} images, abs eb = {eb:.0e}\n");

    let base = App::Hurricane.generate(n, 42);
    let fields: Vec<Vec<f32>> = (0..nranks).map(|r| observation(&base, r)).collect();

    let t_mpi = run_collective(Kernel::MpiOriginal, CollOp::Allreduce, &fields, eb).0;
    let table =
        Table::new(&[("Kernel", 24), ("Speedup", 8), ("CPR+CPT", 9), ("MPI", 8), ("Others", 8)]);
    for kernel in [
        Kernel::HzcclSingleThread,
        Kernel::CCollSingleThread,
        Kernel::HzcclMultiThread,
        Kernel::CCollMultiThread,
    ] {
        let (t, total) = run_collective(kernel, CollOp::Allreduce, &fields, eb);
        let (doc, mpi, other) = total.percentages();
        table.row(&[
            kernel.label().into(),
            format!("{:.2}x", t_mpi / t),
            format!("{doc:.2}%"),
            format!("{mpi:.2}%"),
            format!("{other:.2}%"),
        ]);
    }

    // accuracy of the hZCCL-stacked image vs exact float stacking
    let exact: Vec<f32> = (0..n).map(|i| fields.iter().map(|f| f[i]).sum::<f32>()).collect();
    let timing = hzccl_bench::timing_for(
        hzccl::Variant::Hzccl,
        hzccl::Mode::SingleThread,
        &fields[0][..n.min(1 << 21)],
        eb,
    );
    let cluster = netsim::SimBuilder::new(nranks).net(hzccl_bench::net()).timing(timing);
    let opts = CollectiveOpts::hz(eb);
    let outcomes = cluster
        .run(|comm| {
            collectives::allreduce(comm, &fields[comm.rank()], &opts).expect("stacking allreduce")
        })
        .expect_clean()
        .outcomes;
    let q = Quality::compare(&exact, &outcomes[0].value);
    println!("\nhZCCL stacked-image quality: PSNR = {:.2} dB, NRMSE = {:.1e}", q.psnr, q.nrmse);
    println!("(paper: PSNR 62.00, NRMSE 8.0e-4 at abs eb 1e-4)");
    println!("\nExpected shape (paper Table VII): hZCCL > C-Coll in both modes");
    println!("(paper: 1.81x/5.02x vs MPI against C-Coll's 1.45x/3.34x), with");
    println!("hZCCL's CPR+CPT share clearly below C-Coll's in MT mode.");
}
