//! EXT2 — extension: ring vs recursive-doubling Allreduce crossover. MPICH
//! switches algorithms by message size; this sweep shows the same crossover
//! holds for the homomorphic variants (recursive doubling wins the
//! latency-bound small-message regime, the ring wins bandwidth-bound large
//! messages).

use datasets::App;
use hzccl::collectives::{self, CollectiveOpts};
use hzccl::{paper_model, rd, CollectiveConfig, Mode, Variant};
use hzccl_bench::{banner, env_usize, Table};
use netsim::{ComputeTiming, SimBuilder};

fn main() {
    banner("EXT2", "extension — ring vs recursive-doubling Allreduce crossover");
    let nranks = env_usize("HZ_RANKS", 32);
    let eb = 1e-4;
    let mode = Mode::MultiThread(18);
    let cfg = CollectiveConfig::new(eb, mode);
    let ring_opts = CollectiveOpts::hz(eb).with_mode(mode);
    let timing = ComputeTiming::Modeled(paper_model(Variant::Hzccl, mode));

    println!("{nranks} ranks, hZCCL compression, RTM data\n");
    let table = Table::new(&[
        ("Size/rank", 10),
        ("ring hZ (ms)", 12),
        ("rec-dbl hZ (ms)", 15),
        ("winner", 8),
    ]);
    for kb in [1usize, 16, 256, 4096, 16384] {
        let n = (kb * 1024 / 4).max(nranks); // ring needs n >= nranks
                                             // independent per-rank fields: partial sums grow like sqrt(k), the
                                             // realistic regime for ensemble/shot accumulation
        let fields: Vec<Vec<f32>> =
            (0..nranks).map(|r| App::SimSet1.generate(n, r as u64)).collect();
        let run = |ring: bool| -> f64 {
            let cluster = SimBuilder::new(nranks).timing(timing);
            let stats = cluster
                .run(|comm| {
                    let data = &fields[comm.rank()];
                    if ring {
                        collectives::allreduce(comm, data, &ring_opts).expect("ring");
                    } else {
                        rd::allreduce_rd_hz(comm, data, &cfg).expect("rd");
                    }
                })
                .expect_clean()
                .stats;
            stats.makespan
        };
        let t_ring = run(true);
        let t_rd = run(false);
        table.row(&[
            format!("{kb} KB"),
            format!("{:.3}", t_ring * 1e3),
            format!("{:.3}", t_rd * 1e3),
            if t_rd < t_ring { "rec-dbl".into() } else { "ring".into() },
        ]);
    }
    println!("\nExpected shape: recursive doubling wins the latency-bound small-");
    println!("message regime outright. For large messages the classic ring");
    println!("advantage (2S vs log2(N)*S on the wire) is partly eroded by a");
    println!("compression effect the uncompressed analysis misses: the ring's");
    println!("Allgather ships fully-accumulated chunks whose deltas are ~sqrt(N)");
    println!("larger and compress worse, while recursive doubling ships mostly");
    println!("low-order partial sums — so the crossover moves to much larger");
    println!("messages than MPICH's uncompressed switch point.");
}
