//! TAB4 — Table IV: memory-bandwidth efficiency of fZ-light and ompSZp
//! (compressor throughput as a percentage of the STREAM peak).

use datasets::App;
use fzlight::{Config, ErrorBound};
use hzccl_bench::{banner, env_usize, field_elems, gbps, mt_threads, time_best, Table};

fn main() {
    banner("TAB4", "Table IV — memory-bandwidth efficiency vs STREAM peak");
    let threads = mt_threads();
    let stream_n = env_usize("HZ_STREAM_ELEMS", 1 << 24); // 128 MiB per array
    println!("running STREAM with {} MiB arrays on {threads} threads...", (stream_n * 8) >> 20);
    let peak = streambench::run(stream_n, threads, 3);
    println!(
        "STREAM: copy {:.2} scale {:.2} add {:.2} triad {:.2}  => peak {:.2} GB/s\n",
        peak.copy,
        peak.scale,
        peak.add,
        peak.triad,
        peak.peak()
    );

    let n = field_elems();
    let bytes = n * 4;
    let table = Table::new(&[
        ("App", 12),
        ("REL", 6),
        ("oSZp Compr.", 11),
        ("oSZp Decom.", 11),
        ("fZ Compr.", 11),
        ("fZ Decom.", 11),
    ]);
    for app in [App::SimSet2, App::Nyx] {
        let data = app.generate(n, 0);
        for rel in [1e-3, 1e-4] {
            let cfg = Config::new(ErrorBound::Rel(rel)).with_threads(threads);
            let mut fz_stream = None;
            let t_fc = time_best(3, || {
                fz_stream = Some(fzlight::compress(&data, &cfg).expect("fz"));
            });
            let fz_stream = fz_stream.unwrap();
            let mut out = vec![0f32; n];
            let t_fd = time_best(3, || {
                fzlight::decompress_into(&fz_stream, &mut out).expect("fz d");
            });
            let mut o_stream = None;
            let t_oc = time_best(3, || {
                o_stream = Some(ompszp::compress(&data, &cfg).expect("oszp"));
            });
            let o_stream = o_stream.unwrap();
            let t_od = time_best(3, || {
                ompszp::decompress_into(&o_stream, &mut out).expect("oszp d");
            });
            let eff = |t: f64| format!("{:.2}%", 100.0 * gbps(bytes, t) / peak.peak());
            table.row(&[
                app.name().into(),
                format!("{rel:.0e}"),
                eff(t_oc),
                eff(t_od),
                eff(t_fc),
                eff(t_fd),
            ]);
        }
    }
    println!("\nExpected shape (paper Table IV): fZ-light reaches a large fraction");
    println!("of STREAM peak (paper: up to 94.5% decompression on NYX) while");
    println!("ompSZp stays in single digits.");
}
