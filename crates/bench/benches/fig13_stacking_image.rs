//! FIG13 — Fig. 13: visual comparison of the final stacking image produced
//! by uncompressed MPI vs the hZCCL-accelerated Allreduce. Writes PGM images
//! to `target/fig13/` and prints the numerical quality metrics.

use datasets::{save_pgm, App, Quality};
use hzccl::collectives::{self, CollectiveOpts};
use hzccl_bench::{banner, env_usize};
use netsim::{ComputeTiming, SimBuilder, ThroughputModel};
use std::path::Path;

fn observation(base: &[f32], rank: usize) -> Vec<f32> {
    let mut h = (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xABCD;
    base.iter()
        .map(|&v| {
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            h ^= h >> 33;
            let noise = ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 0.3;
            v + noise
        })
        .collect()
}

fn main() {
    banner("FIG13", "Fig. 13 — stacking-image visualization (PGM output)");
    let nranks = env_usize("HZ_RANKS", 32);
    let side = env_usize("HZ_IMG_SIDE", 512);
    let n = side * side;
    let eb = 1e-4;

    let base = App::Hurricane.generate(n, 42);
    let fields: Vec<Vec<f32>> = (0..nranks).map(|r| observation(&base, r)).collect();
    let exact: Vec<f32> = (0..n).map(|i| fields.iter().map(|f| f[i]).sum::<f32>()).collect();

    let timing = ComputeTiming::Modeled(ThroughputModel::new(2.0, 4.0, 20.0, 10.0, 20.0));
    let cluster = SimBuilder::new(nranks).timing(timing);
    let opts = CollectiveOpts::hz(eb);
    let outcomes = cluster
        .run(|comm| {
            collectives::allreduce(comm, &fields[comm.rank()], &opts).expect("stacking allreduce")
        })
        .expect_clean()
        .outcomes;
    let stacked = &outcomes[0].value;

    let dir = Path::new("target/fig13");
    std::fs::create_dir_all(dir).expect("mkdir");
    save_pgm(&dir.join("stack_mpi.pgm"), &exact, side, side).expect("write exact");
    save_pgm(&dir.join("stack_hzccl.pgm"), stacked, side, side).expect("write hzccl");

    let q = Quality::compare(&exact, stacked);
    println!("wrote {}/stack_mpi.pgm and stack_hzccl.pgm ({side}x{side})", dir.display());
    println!(
        "PSNR = {:.2} dB, NRMSE = {:.1e}, max abs err = {:.2e}",
        q.psnr, q.nrmse, q.max_abs_err
    );
    println!(
        "max abs err vs theoretical bound N*eb = {:.2e}: {}",
        nranks as f64 * eb,
        if q.max_abs_err <= nranks as f64 * eb * 1.01 { "WITHIN BOUND" } else { "EXCEEDED" }
    );
    println!("\nExpected (paper Fig. 13 + Sec. IV-E): no visual difference between");
    println!("the two images; paper reports PSNR 62.00 / NRMSE 8.0e-4.");
}
