//! Climate-model Allreduce: ensemble members on different nodes average a
//! CESM-ATM-like 2-D field every timestep — the communication pattern the
//! paper's intro motivates. Runs all three collective flavours on the
//! simulated cluster and prints their virtual times and cost breakdowns.
//!
//! ```text
//! cargo run --release --example climate_allreduce
//! ```

use datasets::App;
use hzccl::collectives::{self, CollectiveOpts};
use hzccl::{CollectiveConfig, Mode};
use netsim::SimBuilder;

const RANKS: usize = 16;
const ELEMS: usize = 1 << 21; // 8 MiB per rank
const EB: f64 = 1e-2;

fn main() {
    let base = App::CesmAtm.generate(ELEMS, 0);
    let fields: Vec<Vec<f32>> = (0..RANKS)
        .map(|r| {
            let k = 1.0 + 0.002 * r as f32;
            base.iter().map(|&v| v * k).collect()
        })
        .collect();

    // model the paper's 36-thread Broadwell socket so the demo reproduces
    // the published operating regime regardless of this host's core count
    // (swap in hzccl::calibrate_hz / calibrate_doc for host calibration)
    let mode = Mode::MultiThread(18);
    let cfg = CollectiveConfig::new(EB, mode);
    let sample = &fields[0][..ELEMS.min(1 << 20)];
    let hz_timing = netsim::ComputeTiming::Modeled(hzccl::paper_model(hzccl::Variant::Hzccl, mode));
    let doc_timing =
        netsim::ComputeTiming::Modeled(hzccl::paper_model(hzccl::Variant::CColl, mode));

    let probe = fzlight::compress(sample, &cfg.fz()).expect("probe");
    println!(
        "{RANKS} ensemble ranks averaging a CESM-ATM field ({} MiB each, ratio ~{:.1})\n",
        (ELEMS * 4) >> 20,
        probe.ratio()
    );
    println!("(whether compression pays off depends on ratio x throughput vs the wire;");
    println!(" see the costmodel crate for the closed-form crossover)\n");

    let run = |label: &str, timing: netsim::ComputeTiming, opts: &CollectiveOpts| {
        let cluster = SimBuilder::new(RANKS).timing(timing);
        let report = cluster
            .run(|comm| {
                let data = &fields[comm.rank()];
                collectives::allreduce(comm, data, opts).expect(label)
            })
            .expect_clean();
        let stats = report.stats;
        let (doc, mpi_pct, other) = stats.total.percentages();
        println!(
            "{label:<26} {:>9.3} ms | DOC-related {doc:5.1}% MPI {mpi_pct:5.1}% OTHER {other:4.1}%",
            stats.makespan * 1e3
        );
        (report.value(0).clone(), stats.makespan)
    };

    let (exact, t_mpi) = run("MPI (no compression)", hz_timing, &CollectiveOpts::mpi());
    let (ccoll_out, t_ccoll) =
        run("C-Coll (DOC)", doc_timing, &CollectiveOpts::ccoll(EB).with_mode(mode));
    let (hz_out, t_hz) =
        run("hZCCL (homomorphic)", hz_timing, &CollectiveOpts::hz(EB).with_mode(mode));
    // the segmented pipelined ring overlaps compression with the wire
    let (_, t_hz_pipe) = run(
        "hZCCL (pipelined, S=4)",
        hz_timing,
        &CollectiveOpts::hz(EB).with_mode(mode).with_segments(4),
    );

    println!(
        "\nspeedups over MPI: C-Coll {:.2}x, hZCCL {:.2}x, hZCCL/S=4 {:.2}x",
        t_mpi / t_ccoll,
        t_mpi / t_hz,
        t_mpi / t_hz_pipe
    );

    // accuracy: both compressed paths stay within their analytic bounds
    let max_err = |out: &[f32]| {
        out.iter().zip(&exact).map(|(a, b)| (a - b).abs() as f64).fold(0.0f64, f64::max)
    };
    println!(
        "max abs error vs exact: C-Coll {:.2e}, hZCCL {:.2e} (N*eb = {:.0e})",
        max_err(&ccoll_out),
        max_err(&hz_out),
        RANKS as f64 * EB
    );
    assert!(max_err(&hz_out) <= RANKS as f64 * EB * 1.01);
}
