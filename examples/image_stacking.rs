//! Image stacking (the paper's Sec. IV-E use case): many nodes each hold a
//! noisy observation of the same scene; stacking them into a high-SNR image
//! is an `Allreduce`. This example runs the hZCCL-accelerated stacking on a
//! simulated cluster, compares it with plain MPI, and writes both results
//! as PGM images.
//!
//! ```text
//! cargo run --release --example image_stacking
//! ```

use datasets::{save_pgm, App, Quality};
use hzccl::collectives::{self, CollectiveOpts};
use hzccl::Mode;
use netsim::{ComputeTiming, SimBuilder, ThroughputModel};
use std::path::Path;

const SIDE: usize = 512;
const RANKS: usize = 32;
const EB: f64 = 1e-4;

/// One node's observation: the shared scene plus rank-seeded sensor noise.
fn observation(scene: &[f32], rank: usize) -> Vec<f32> {
    let mut h = (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED;
    scene
        .iter()
        .map(|&v| {
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            h ^= h >> 33;
            v + ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 0.4
        })
        .collect()
}

fn main() {
    let n = SIDE * SIDE;
    let scene = App::Hurricane.generate(n, 7);
    let observations: Vec<Vec<f32>> = (0..RANKS).map(|r| observation(&scene, r)).collect();

    // modeled compute timing so the virtual-time comparison is deterministic
    let timing = ComputeTiming::Modeled(ThroughputModel::new(2.0, 4.0, 20.0, 10.0, 20.0));
    let hz_opts = CollectiveOpts::hz(EB).with_mode(Mode::MultiThread(2));

    // --- baseline: uncompressed MPI stacking
    let cluster = SimBuilder::new(RANKS).timing(timing);
    let mpi_report = cluster
        .run(|comm| {
            collectives::allreduce(comm, &observations[comm.rank()], &CollectiveOpts::mpi())
                .expect("mpi stacking")
        })
        .expect_clean();
    let (mpi_stats, mpi_image) = (mpi_report.stats, mpi_report.value(0).clone());

    // --- hZCCL-accelerated stacking
    let hz_report = cluster
        .run(|comm| {
            collectives::allreduce(comm, &observations[comm.rank()], &hz_opts)
                .expect("hzccl stacking")
        })
        .expect_clean();
    let (hz_stats, hz_image) = (hz_report.stats, hz_report.value(0).clone());

    println!("stacked {RANKS} observations of a {SIDE}x{SIDE} scene (abs eb {EB:.0e})");
    println!(
        "virtual collective time: MPI {:.3} ms, hZCCL {:.3} ms ({:.2}x speedup)",
        mpi_stats.makespan * 1e3,
        hz_stats.makespan * 1e3,
        mpi_stats.makespan / hz_stats.makespan
    );

    let q = Quality::compare(&mpi_image, &hz_image);
    println!("hZCCL vs exact stack: PSNR {:.2} dB, NRMSE {:.2e}", q.psnr, q.nrmse);
    assert!(q.max_abs_err <= RANKS as f64 * EB * 1.01, "stacking must stay error-bounded");

    let dir = Path::new("target/image_stacking");
    std::fs::create_dir_all(dir).expect("mkdir");
    save_pgm(&dir.join("stack_mpi.pgm"), &mpi_image, SIDE, SIDE).expect("write mpi");
    save_pgm(&dir.join("stack_hzccl.pgm"), &hz_image, SIDE, SIDE).expect("write hzccl");
    println!("wrote {}/stack_mpi.pgm and stack_hzccl.pgm", dir.display());
}
