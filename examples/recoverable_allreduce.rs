//! Self-healing allreduce: two ranks crash mid-collective, the survivors
//! repair the ring and finish with a typed partial result that says exactly
//! whose data the sum contains.
//!
//! ```text
//! cargo run --release --example recoverable_allreduce
//! ```
//!
//! The run is seeded and deterministic: ranks 3 and 6 die on their 2nd and
//! 5th data-plane sends, the survivors agree on the deaths, splice them out
//! of the ring under a bumped epoch, and rerun. `Shrink` delivers the
//! survivor sum; `ShrinkRescale` multiplies it by `n0 / survivors` — the
//! unbiased-mean estimator used for data-parallel gradient averaging.

use datasets::App;
use hzccl::collectives::{allreduce_recoverable, CollectiveOpts, RecoveryPolicy};
use netsim::{FaultPlan, Registry, SimBuilder, TraceConfig};

fn main() {
    let nranks = 8;
    let n = 1 << 16; // 256 KiB of f32 per rank
    let eb = 1e-4;
    let base = App::CesmAtm.generate(n, 7);
    let fields: Vec<Vec<f32>> =
        (0..nranks).map(|r| base.iter().map(|&v| v * (1.0 + 0.01 * r as f32)).collect()).collect();

    // the expected deaths would otherwise print panic reports: keep them
    // off stderr so the example output stays readable
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info.payload().downcast_ref::<String>().map(String::as_str).unwrap_or("");
        if !msg.contains("crashed by fault plan") {
            hook(info);
        }
    }));

    let plan = FaultPlan::new(29).with_crash(3, 2).with_crash(6, 4);
    let opts = CollectiveOpts::hz(eb).with_recovery(RecoveryPolicy::Shrink);
    let report = SimBuilder::new(nranks).trace(TraceConfig::default()).faults(plan).run(|comm| {
        let data = &fields[comm.rank()];
        allreduce_recoverable(comm, data, &opts).expect("recoverable allreduce")
    });

    // ranks 3 and 6 died; everyone else committed the same partial result
    let part = report.value(0);
    println!("contributors: {:?} (epoch {})", part.contributors, part.epoch);
    assert_eq!(part.contributors, vec![0, 1, 2, 4, 5, 7]);
    assert!(part.epoch >= 1, "at least one membership repair happened");

    // the survivor sum respects the shrink error bound against exact f64
    let m = part.contributors.len();
    let tol = hzccl::error_bounds::shrink_allreduce(m, eb);
    let max_err = part
        .value
        .iter()
        .enumerate()
        .map(|(i, &got)| {
            let exact: f64 = part.contributors.iter().map(|&r| f64::from(fields[r][i])).sum();
            (f64::from(got) - exact).abs()
        })
        .fold(0.0f64, f64::max);
    println!("survivor-sum max abs err {max_err:.3e} (bound {tol:.1e})");
    assert!(max_err <= tol);

    // recovery is observable: repairs, committed epoch and survivor count
    let mut reg = Registry::new();
    reg.record_report(&report);
    println!(
        "hz_recoveries_total={} hz_epochs={:?} hz_survivors={:?}",
        reg.counter("hz_recoveries_total").unwrap_or(0),
        reg.gauge("hz_epochs"),
        reg.gauge("hz_survivors"),
    );
    assert!(reg.counter("hz_recoveries_total").unwrap_or(0) >= 1);
    assert_eq!(reg.gauge("hz_survivors"), Some(m as f64));
    println!("self-healing allreduce completed with {m}/{nranks} ranks");
}
