//! Hierarchical Allreduce on a two-tier fabric: 8 nodes x 8 ranks/node with
//! inter-node links 10x slower than the node-local wire (the paper cluster's
//! shape). The flat hz ring drags the full ring over the slow tier; the
//! hierarchical schedule reduces inside each node first, runs the compressed
//! ring over one leader per node, and broadcasts back — so the slow tier
//! carries `1/ppn` of the traffic. The per-tier critical-path table shows
//! exactly where the virtual time goes.
//!
//! ```text
//! cargo run --release --example hierarchical_allreduce
//! ```

use datasets::App;
use hzccl::collectives::{self, CollectiveOpts};
use hzccl::{Mode, Variant};
use netsim::{ComputeTiming, LinkTier, NetConfig, SimBuilder, Topology};

const NODES: usize = 8;
const PPN: usize = 8;
const ELEMS: usize = 1 << 18; // 1 MiB of f32 per rank
const EB: f64 = 1e-4;

fn main() {
    let topo = Topology::paper(NODES, PPN);
    let nranks = topo.nranks();
    let base = App::SimSet1.generate(ELEMS, 0);
    let fields: Vec<Vec<f32>> =
        (0..nranks).map(|r| base.iter().map(|&v| v * (1.0 + 0.001 * r as f32)).collect()).collect();

    let net = NetConfig::default();
    let timing = ComputeTiming::Modeled(hzccl::paper_model(Variant::Hzccl, Mode::SingleThread));
    println!(
        "{} ({} ranks), {} MiB per rank, eb {EB:.0e}",
        topo.describe(),
        nranks,
        (ELEMS * 4) >> 20
    );
    println!(
        "intra {:.0} Gb/s, inter {:.0} Gb/s effective\n",
        topo.link(LinkTier::Intra).bandwidth_gbps,
        topo.link(LinkTier::Inter).bandwidth_gbps
    );

    // Run one flavour, return its makespan plus the per-tier critical path.
    let run = |label: &str, opts: &CollectiveOpts| -> (Vec<f32>, f64, netsim::CriticalPath) {
        let cluster = SimBuilder::new(nranks)
            .net(net)
            .timing(timing)
            .topology(topo)
            .trace(netsim::TraceConfig::default());
        let report = cluster
            .run(|comm| collectives::allreduce(comm, &fields[comm.rank()], opts).expect(label))
            .expect_clean();
        let makespan = report.stats.makespan;
        let cp = netsim::CriticalPath::analyze_with_topology(&report.traces, &net, Some(&topo));
        (report.values().swap_remove(0), makespan, cp)
    };

    let (flat_out, t_flat, _) = run("flat hz ring", &CollectiveOpts::hz(EB));
    let (hier_out, t_hier, cp) =
        run("hierarchical hz", &CollectiveOpts::hz(EB).with_topology(topo));

    println!("{:<28} {:>10.3} ms", "flat hz ring", t_flat * 1e3);
    println!("{:<28} {:>10.3} ms", "hierarchical hz", t_hier * 1e3);
    println!(
        "\nhierarchy wins {:.1}% ({:.2}x) by keeping {}/{} of each ring off the slow tier\n",
        (1.0 - t_hier / t_flat) * 100.0,
        t_flat / t_hier,
        PPN - 1,
        PPN
    );

    // Per-tier attribution of the hierarchical run's causal critical path:
    // which fabric tier the path's communication time was actually spent on.
    println!("critical path of the hierarchical run: {:.3} ms", cp.length * 1e3);
    println!(
        "{:<8} {:>6} {:>12} {:>12} {:>12} {:>8}",
        "tier", "hops", "alpha s", "wire s", "jitter s", "share"
    );
    for tier in LinkTier::ALL {
        let tt = cp.by_tier[tier.index()];
        if tt.hops == 0 {
            continue;
        }
        println!(
            "{:<8} {:>6} {:>12.6} {:>12.6} {:>12.6} {:>7.2}%",
            tier.name(),
            tt.hops,
            tt.alpha,
            tt.wire,
            tt.jitter,
            tt.total() * 100.0 / cp.length
        );
    }

    // Both schedules bound the same quantization error; the hierarchy sums
    // in two stages, so its bound is the same N*eb envelope.
    let max_dev =
        flat_out.iter().zip(&hier_out).map(|(a, b)| (a - b).abs() as f64).fold(0.0f64, f64::max);
    println!(
        "\nmax |flat - hierarchical| = {max_dev:.2e} (bound 2*N*eb = {:.0e})",
        2.0 * nranks as f64 * EB
    );
    assert!(max_dev <= 2.0 * nranks as f64 * EB);
    assert!(
        t_hier <= t_flat * 0.7,
        "hierarchy should win >= 30% on this fabric ({t_hier} vs {t_flat})"
    );
}
