//! Seismic-imaging Reduce_scatter: RTM partial images distributed across
//! nodes are summed and scattered for the next migration step. Demonstrates
//! the homomorphic pipeline statistics on realistic wavefield data and the
//! Reduce_scatter cost advantage of Sec. III-C.1.
//!
//! ```text
//! cargo run --release --example seismic_reduce_scatter
//! ```

use datasets::App;
use fzlight::{Config, ErrorBound};
use hzccl::collectives::{self, CollectiveOpts};
use hzccl::{CollectiveConfig, Mode};
use netsim::{ComputeTiming, SimBuilder};

const RANKS: usize = 32;
const ELEMS: usize = 1 << 21; // 8 MiB per rank
const EB: f64 = 1e-4;

fn main() {
    // each rank holds a different shot's partial wavefield
    let fields: Vec<Vec<f32>> =
        (0..RANKS).map(|r| App::SimSet1.generate(ELEMS, r as u64)).collect();

    // 1. What does the dynamic homomorphic pipeline see on this data?
    let cfg_fz = Config::new(ErrorBound::Abs(EB)).with_threads(2);
    let ca = fzlight::compress(&fields[0], &cfg_fz).expect("compress");
    let cb = fzlight::compress(&fields[1], &cfg_fz).expect("compress");
    let (_, stats) = hzdyn::homomorphic_sum_with_stats(&ca, &cb).expect("hz");
    println!("RTM wavefields: compression ratio {:.1}, pipeline mix {stats}", ca.ratio());

    // 2. Reduce_scatter across the simulated cluster, all three flavours.
    let mode = Mode::MultiThread(2);
    let cfg = CollectiveConfig::new(EB, mode);
    let sample = &fields[0][..ELEMS.min(1 << 20)];
    let hz_timing = ComputeTiming::Modeled(hzccl::calibrate_hz(sample, &cfg));
    let doc_timing = ComputeTiming::Modeled(hzccl::calibrate_doc(sample, &cfg));

    let run = |label: &str, timing: ComputeTiming, opts: &CollectiveOpts| -> f64 {
        let cluster = SimBuilder::new(RANKS).timing(timing);
        let stats = cluster
            .run(|comm| {
                let data = &fields[comm.rank()];
                collectives::reduce_scatter(comm, data, opts).expect(label);
            })
            .expect_clean()
            .stats;
        println!("{label:<26} {:>9.3} ms", stats.makespan * 1e3);
        stats.makespan
    };

    println!("\nReduce_scatter of {} MiB per rank across {RANKS} ranks:", (ELEMS * 4) >> 20);
    let t_mpi = run("MPI (no compression)", hz_timing, &CollectiveOpts::mpi());
    let t_ccoll = run("C-Coll (DOC)", doc_timing, &CollectiveOpts::ccoll(EB).with_mode(mode));
    let hz_opts = CollectiveOpts::hz(EB).with_mode(mode);
    let t_hz = run("hZCCL (homomorphic)", hz_timing, &hz_opts);
    let t_hz_pipe = run("hZCCL (pipelined, S=4)", hz_timing, &hz_opts.clone().with_segments(4));
    println!(
        "\nspeedups over MPI: C-Coll {:.2}x, hZCCL {:.2}x (pipelined {:.2}x, vs C-Coll {:.2}x)",
        t_mpi / t_ccoll,
        t_mpi / t_hz,
        t_mpi / t_hz_pipe,
        t_ccoll / t_hz
    );

    // 3. Correctness: hZCCL's chunk equals MPI's within N*eb.
    let cluster = SimBuilder::new(RANKS).timing(hz_timing);
    let exact = cluster
        .run(|comm| {
            collectives::reduce_scatter(comm, &fields[comm.rank()], &CollectiveOpts::mpi())
                .expect("mpi")
        })
        .expect_clean()
        .outcomes;
    let approx = cluster
        .run(|comm| {
            collectives::reduce_scatter(comm, &fields[comm.rank()], &hz_opts).expect("hzccl")
        })
        .expect_clean()
        .outcomes;
    let mut worst = 0f64;
    for (e, a) in exact.iter().zip(&approx) {
        for (x, y) in e.value.iter().zip(&a.value) {
            worst = worst.max((x - y).abs() as f64);
        }
    }
    println!(
        "max abs error vs exact reduction: {worst:.2e} (bound N*eb = {:.0e})",
        RANKS as f64 * EB
    );
    assert!(worst <= RANKS as f64 * EB * 1.01);
}
