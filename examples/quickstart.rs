//! Quickstart: compress a scientific field with fZ-light, reduce two
//! compressed streams homomorphically with hZ-dynamic, and verify the error
//! bounds — the 60-second tour of the library.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use datasets::{App, Quality};
use fzlight::{compress, decompress, Config, ErrorBound};
use hzccl::collectives::{self, CollectiveOpts};
use hzdyn::homomorphic_sum;
use netsim::SimBuilder;

fn main() {
    // 1. Two snapshots of a scientific field (synthetic Hurricane data).
    let n = 1 << 22; // 16 MiB of f32
    let snap_a = App::Hurricane.generate(n, 0);
    let snap_b = App::Hurricane.generate(n, 1);

    // 2. Compress both with an absolute error bound of 1e-4.
    let eb = 1e-4;
    let cfg = Config::new(ErrorBound::Abs(eb)).with_threads(4);
    let ca = compress(&snap_a, &cfg).expect("compress a");
    let cb = compress(&snap_b, &cfg).expect("compress b");
    println!(
        "compressed {} MiB -> {:.2} MiB + {:.2} MiB (ratios {:.2} / {:.2})",
        (n * 4) >> 20,
        ca.compressed_size() as f64 / (1 << 20) as f64,
        cb.compressed_size() as f64 / (1 << 20) as f64,
        ca.ratio(),
        cb.ratio()
    );

    // 3. The round trip respects the error bound.
    let da = decompress(&ca).expect("decompress");
    let q = Quality::compare(&snap_a, &da);
    println!(
        "roundtrip: max abs err {:.2e} (bound {eb:.0e}), PSNR {:.1} dB",
        q.max_abs_err, q.psnr
    );
    let ulp = q.max.abs().max(q.min.abs()) * f32::EPSILON as f64;
    assert!(q.max_abs_err <= eb + ulp);

    // 4. Homomorphic reduction: add the two snapshots WITHOUT decompressing.
    let sum = homomorphic_sum(&ca, &cb).expect("homomorphic sum");
    let restored = decompress(&sum).expect("decompress sum");
    let exact: Vec<f32> = snap_a.iter().zip(&snap_b).map(|(x, y)| x + y).collect();
    let q = Quality::compare(&exact, &restored);
    println!(
        "homomorphic sum: max abs err {:.2e} (bound 2*eb = {:.0e}), output ratio {:.2}",
        q.max_abs_err,
        2.0 * eb,
        sum.ratio()
    );
    let ulp = q.max.abs().max(q.min.abs()) * f32::EPSILON as f64;
    assert!(q.max_abs_err <= 2.0 * eb + ulp);

    // 5. The same idea scaled to a cluster: one call against the unified
    //    collectives API runs the homomorphic ring Allreduce on a simulated
    //    8-rank machine (add `.with_segments(4)` to pipeline it).
    let opts = CollectiveOpts::hz(eb);
    let cluster = SimBuilder::new(8);
    let m = 1 << 12;
    let outcomes = cluster
        .run(|comm| {
            let data = App::Hurricane.generate(m, comm.rank() as u64);
            collectives::allreduce(comm, &data, &opts).expect("allreduce")
        })
        .expect_clean()
        .outcomes;
    assert!(outcomes.iter().all(|o| o.value == outcomes[0].value));
    println!("cluster allreduce: 8 ranks agree bit-for-bit on the error-bounded sum");

    println!("quickstart OK");
}
