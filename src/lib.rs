//! # hzccl-suite — workspace umbrella crate
//!
//! Re-exports the whole hZCCL reproduction stack so the examples and
//! integration tests under the repository root can reach every subsystem
//! through one dependency. See the individual crates for the real APIs:
//!
//! * [`fzlight`] — the fZ-light error-bounded lossy compressor
//! * [`ompszp`] — the cuSZp-strategy CPU baseline compressor
//! * [`szxlite`] — the SZx-style prediction-free comparator
//! * [`hzdyn`] — the hZ-dynamic homomorphic compression pipeline
//! * [`netsim`] — the virtual-time cluster simulator (MPI substrate)
//! * [`hzccl`] — the co-designed collective framework (primary contribution)
//! * [`datasets`] — synthetic application datasets + quality metrics
//! * [`streambench`] — the STREAM memory-bandwidth benchmark
//! * [`costmodel`] — the closed-form Sec. III-C cost model

pub use costmodel;
pub use datasets;
pub use fzlight;
pub use hzccl;
pub use hzdyn;
pub use netsim;
pub use ompszp;
pub use streambench;
pub use szxlite;
