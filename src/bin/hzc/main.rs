//! `hzc` — command-line front end for the hZCCL compression stack.
//!
//! ```text
//! hzc gen <app> <out.f32> [--mb N] [--seed S]     generate a synthetic field
//! hzc compress <in.f32> <out.fzl> [--eb E] [--rel E] [--threads T] [--block B]
//! hzc decompress <in.fzl> <out.f32>
//! hzc info <in.fzl>                                header + block statistics
//! hzc sum <a.fzl> <b.fzl> <out.fzl>                homomorphic a + b
//! hzc diff <a.fzl> <b.fzl> <out.fzl>               homomorphic a - b
//! hzc check <in.f32> <stream.fzl>                  verify the error bound
//! hzc sim <op> [--ranks N] [--mb M] [--variant V] [--topology NxP[:oversub]]
//!                                                  run a simulated collective
//! hzc tune [--ranks L] [--sizes-kb L] [--out F]    offline autotune sweep
//! hzc bench [--quick] [--against baseline.json]    deterministic perf suite
//! hzc kernels [--quick] [--gate R] [--out F]       kernel roofline harness
//! ```
//!
//! `.f32` files are raw little-endian floats (the SDRBench layout); `<app>`
//! is one of `sim1`, `sim2`, `nyx`, `cesm`, `hurricane`.

use datasets::{App, Quality};
use fzlight::{CompressedStream, Config, ErrorBound, StreamStats};
use std::path::Path;
use std::process::ExitCode;

mod bench_cmd;
mod kernels_cmd;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("hzc: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  hzc gen <sim1|sim2|nyx|cesm|hurricane> <out.f32> [--mb N] [--seed S]
  hzc compress <in.f32> <out.fzl> [--eb E | --rel E] [--threads T] [--block B]
  hzc decompress <in.fzl> <out.f32>
  hzc info <in.fzl>
  hzc sum <a.fzl> <b.fzl> <out.fzl>
  hzc diff <a.fzl> <b.fzl> <out.fzl>
  hzc check <in.f32> <stream.fzl>
  hzc sim <allreduce|reduce_scatter|reduce|bcast> [--ranks N] [--mb M | --kb K]
          [--variant hz|ccoll|mpi|rd|auto] [--eb E] [--threads T] [--segments S]
          [--topology NxP[:oversub]] [--app A] [--seed S] [--cache state.json]
          [--trace out.json] [--metrics] [--width W] [--critical-path] [--slack]
  hzc bench [--quick] [--scale] [--out F] [--against baseline.json] [--tol-time R]
          [--tol-bytes R] [--seed S] [--eb E] [--app A] [--engine events|threads]
          [--ops L] [--variants L] [--ranks-list L] [--sizes-kb L]
          [--segments-list L] [--no-fault]
          deterministic perf suite; nonzero exit on regression vs baseline
  hzc kernels [--quick] [--elems N] [--trials K] [--threads T] [--gate R]
          [--out BENCH_kernels.json] [--check BENCH_kernels.json]
          kernel micro-benchmarks vs scalar references + STREAM roofline;
          --gate enforces a minimum speedup, --check verifies a snapshot
  hzc tune [--ops L] [--ranks L] [--sizes-kb L] [--eb E] [--app A] [--seed S]
          [--out state.json]   (L = comma-separated list, e.g. 8,64)
  hzc chaos [--seed S] [--ranks N] [--kb K] [--eb E] [--drop P[,P..]]
          [--corrupt P] [--jitter SECS] [--app A] [--crash-rate P[,P..]]
          soak the resilient collectives under injected faults;
          --crash-rate switches to the crash-recovery gate: seeded rank
          crashes under the Shrink policy, survivor sums checked bit-exact
          (mpi) or error-bounded (ccoll/hz), nonzero exit on divergence";

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing command")?;
    let rest = &args[1..];
    match cmd.as_str() {
        "gen" => gen(rest),
        "compress" => compress(rest),
        "decompress" => decompress(rest),
        "info" => info(rest),
        "sum" => reduce(rest, hzdyn::ReduceOp::Sum),
        "diff" => reduce(rest, hzdyn::ReduceOp::Diff),
        "check" => check(rest),
        "sim" => sim(rest),
        "tune" => tune(rest),
        "chaos" => chaos(rest),
        "bench" => bench_cmd::bench(rest),
        "kernels" => kernels_cmd::kernels(rest),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Fetch the value following `--flag`, parsed.
fn flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == name {
            let v = args.get(i + 1).ok_or_else(|| format!("{name} needs a value"))?;
            return v.parse().map(Some).map_err(|_| format!("invalid value '{v}' for {name}"));
        }
    }
    Ok(None)
}

fn positional<'a>(args: &'a [String], idx: usize, what: &str) -> Result<&'a String, String> {
    let mut seen = 0;
    for a in args {
        if a.starts_with("--") {
            // skip the flag and its value
            continue;
        }
        if seen == idx {
            return Ok(a);
        }
        seen += 1;
    }
    Err(format!("missing {what}"))
}

/// Positional args ignoring `--flag value` pairs.
fn positionals(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        out.push(a);
    }
    out
}

fn gen(args: &[String]) -> Result<(), String> {
    let pos = positionals(args);
    let app = match pos.first().map(|s| s.as_str()) {
        Some("sim1") => App::SimSet1,
        Some("sim2") => App::SimSet2,
        Some("nyx") => App::Nyx,
        Some("cesm") => App::CesmAtm,
        Some("hurricane") => App::Hurricane,
        Some(other) => return Err(format!("unknown app '{other}'")),
        None => return Err("missing app".into()),
    };
    let out = pos.get(1).ok_or("missing output path")?;
    let mb: usize = flag(args, "--mb")?.unwrap_or(16);
    let seed: u64 = flag(args, "--seed")?.unwrap_or(0);
    let data = app.generate(mb * (1 << 20) / 4, seed);
    datasets::save_f32(Path::new(out), &data).map_err(|e| e.to_string())?;
    println!("wrote {out}: {} ({} MiB, seed {seed})", app.name(), mb);
    Ok(())
}

fn compress(args: &[String]) -> Result<(), String> {
    let input = positional(args, 0, "input .f32")?;
    let output = positional(args, 1, "output .fzl")?;
    let abs: Option<f64> = flag(args, "--eb")?;
    let rel: Option<f64> = flag(args, "--rel")?;
    let eb = match (abs, rel) {
        (Some(_), Some(_)) => return Err("--eb and --rel are mutually exclusive".into()),
        (Some(e), None) => ErrorBound::Abs(e),
        (None, Some(e)) => ErrorBound::Rel(e),
        (None, None) => ErrorBound::Abs(1e-4),
    };
    let threads: usize = flag(args, "--threads")?
        .unwrap_or_else(|| std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1));
    let block: usize = flag(args, "--block")?.unwrap_or(fzlight::DEFAULT_BLOCK_LEN);
    let data = datasets::load_f32(Path::new(input)).map_err(|e| e.to_string())?;
    let cfg = Config::new(eb).with_threads(threads).with_block_len(block);
    let t0 = std::time::Instant::now();
    let stream = fzlight::compress(&data, &cfg).map_err(|e| e.to_string())?;
    let dt = t0.elapsed().as_secs_f64();
    std::fs::write(output, stream.as_bytes()).map_err(|e| e.to_string())?;
    println!(
        "{input} -> {output}: {} -> {} bytes (ratio {:.2}) in {:.3}s ({:.2} GB/s)",
        data.len() * 4,
        stream.compressed_size(),
        stream.ratio(),
        dt,
        (data.len() * 4) as f64 / dt / 1e9
    );
    Ok(())
}

fn decompress(args: &[String]) -> Result<(), String> {
    let input = positional(args, 0, "input .fzl")?;
    let output = positional(args, 1, "output .f32")?;
    let stream = load_stream(input)?;
    let t0 = std::time::Instant::now();
    let data = fzlight::decompress(&stream).map_err(|e| e.to_string())?;
    let dt = t0.elapsed().as_secs_f64();
    datasets::save_f32(Path::new(output), &data).map_err(|e| e.to_string())?;
    println!(
        "{input} -> {output}: {} values in {:.3}s ({:.2} GB/s)",
        data.len(),
        dt,
        (data.len() * 4) as f64 / dt / 1e9
    );
    Ok(())
}

fn info(args: &[String]) -> Result<(), String> {
    let input = positional(args, 0, "input .fzl")?;
    let stream = load_stream(input)?;
    let h = stream.header();
    println!("{input}:");
    println!(
        "  n = {} f32 ({} bytes raw), abs eb = {:e}, block_len = {}, chunks = {}",
        h.n,
        h.n * 4,
        h.eb,
        h.block_len,
        h.nchunks
    );
    let stats = StreamStats::inspect(&stream).map_err(|e| e.to_string())?;
    println!("  {stats}");
    Ok(())
}

fn reduce(args: &[String], op: hzdyn::ReduceOp) -> Result<(), String> {
    let a = positional(args, 0, "first .fzl")?;
    let b = positional(args, 1, "second .fzl")?;
    let out = positional(args, 2, "output .fzl")?;
    let sa = load_stream(a)?;
    let sb = load_stream(b)?;
    let t0 = std::time::Instant::now();
    let result = hzdyn::homomorphic_op(&sa, &sb, op).map_err(|e| e.to_string())?;
    let dt = t0.elapsed().as_secs_f64();
    std::fs::write(out, result.as_bytes()).map_err(|e| e.to_string())?;
    println!(
        "{a} {op:?} {b} -> {out} ({} bytes, ratio {:.2}) in {:.3}s — no decompression performed",
        result.compressed_size(),
        result.ratio(),
        dt
    );
    Ok(())
}

fn check(args: &[String]) -> Result<(), String> {
    let original = positional(args, 0, "original .f32")?;
    let compressed = positional(args, 1, "stream .fzl")?;
    let data = datasets::load_f32(Path::new(original)).map_err(|e| e.to_string())?;
    let stream = load_stream(compressed)?;
    let restored = fzlight::decompress(&stream).map_err(|e| e.to_string())?;
    if restored.len() != data.len() {
        return Err(format!("length mismatch: {} vs {}", data.len(), restored.len()));
    }
    let q = Quality::compare(&data, &restored);
    let eb = stream.eb();
    let ulp = q.max.abs().max(q.min.abs()) * f32::EPSILON as f64;
    println!(
        "max abs err {:.3e} (bound {eb:.3e}), NRMSE {:.3e}, PSNR {:.2} dB",
        q.max_abs_err, q.nrmse, q.psnr
    );
    if q.max_abs_err <= eb + ulp {
        println!("WITHIN BOUND");
        Ok(())
    } else {
        Err("ERROR BOUND VIOLATED".into())
    }
}

fn load_stream(path: &str) -> Result<CompressedStream, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    CompressedStream::from_bytes(bytes).map_err(|e| format!("{path}: {e}"))
}

/// Presence of a boolean `--flag` (no value).
fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// How `hzc sim` interprets `--variant`: the three static flavours, the
/// recursive-doubling hZCCL allreduce, or the tuner-driven auto front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimVariant {
    Static(hzccl::Variant),
    Rd,
    Auto,
}

impl SimVariant {
    fn parse(name: &str) -> Result<SimVariant, String> {
        Ok(match name {
            "rd" => SimVariant::Rd,
            "auto" => SimVariant::Auto,
            other => SimVariant::Static(
                hzccl::Variant::parse(other)
                    .filter(|v| *v != hzccl::Variant::Auto)
                    .ok_or_else(|| format!("unknown variant '{other}' (hz|ccoll|mpi|rd|auto)"))?,
            ),
        })
    }

    fn label(self) -> &'static str {
        match self {
            SimVariant::Static(v) => v.name(),
            SimVariant::Rd => "rd",
            SimVariant::Auto => "auto",
        }
    }

    /// Which variant's paper throughput table times the run.
    fn timing_variant(self) -> hzccl::Variant {
        match self {
            SimVariant::Static(v) => v,
            // rd is the hZCCL recursive-doubling kernel; auto may dispatch
            // anywhere but its headline path is hZCCL, so both borrow the
            // hz table.
            SimVariant::Rd | SimVariant::Auto => hzccl::Variant::Hzccl,
        }
    }
}

fn parse_app(name: &str) -> Result<App, String> {
    Ok(match name {
        "sim1" => App::SimSet1,
        "sim2" => App::SimSet2,
        "nyx" => App::Nyx,
        "cesm" => App::CesmAtm,
        "hurricane" => App::Hurricane,
        other => return Err(format!("unknown app '{other}'")),
    })
}

/// `hzc sim`: run one collective on the virtual cluster with the flight
/// recorder on, then print the paper-style cost breakdown, an ASCII
/// timeline, and (optionally) Prometheus-style metrics; `--trace` writes a
/// Chrome/Perfetto trace-event JSON file. With `--variant auto`, one rank
/// consults the tuner (optionally persisted via `--cache`) and the chosen
/// plan plus the engine's full ranking are printed.
fn sim(args: &[String]) -> Result<(), String> {
    use hzccl::{CollectiveConfig, Mode};
    use netsim::{trace, ComputeTiming, SimBuilder, TraceConfig};

    let op = args.first().map(|s| s.as_str()).ok_or("missing collective op")?;
    if !matches!(op, "allreduce" | "reduce_scatter" | "reduce" | "bcast") {
        return Err(format!("unknown collective '{op}'"));
    }
    let rest = &args[1..];
    // A two-tier fabric: ranks are placed block-wise on nodes, intra-node
    // links use the fast paper calibration, inter-node links the default
    // one (optionally oversubscribed). Fixes the rank count to nodes*ppn.
    let topology = match flag::<String>(rest, "--topology")? {
        Some(spec) => Some(netsim::Topology::parse(&spec)?),
        None => None,
    };
    let ranks = match (topology, flag::<usize>(rest, "--ranks")?) {
        (Some(t), Some(r)) if t.nranks() != r => {
            return Err(format!(
                "--ranks {r} contradicts --topology ({} = {} ranks)",
                t.describe(),
                t.nranks()
            ));
        }
        (Some(t), _) => t.nranks(),
        (None, r) => r.unwrap_or(8),
    };
    if ranks == 0 {
        return Err("--ranks must be at least 1".into());
    }
    let mb: usize = flag(rest, "--mb")?.unwrap_or(4);
    let kb: Option<usize> = flag(rest, "--kb")?;
    let variant = SimVariant::parse(flag::<String>(rest, "--variant")?.as_deref().unwrap_or("hz"))?;
    if variant == SimVariant::Rd && op != "allreduce" {
        return Err(format!("variant 'rd' implements allreduce only, not '{op}'"));
    }
    let eb: f64 = flag(rest, "--eb")?.unwrap_or(1e-4);
    let threads: usize = flag(rest, "--threads")?.unwrap_or(1);
    let mode = if threads > 1 { Mode::MultiThread(threads) } else { Mode::SingleThread };
    // pipeline segment count for the static ring flavours; auto lets the
    // tuner's plan decide
    let segments: usize = flag(rest, "--segments")?.unwrap_or(1);
    if segments == 0 {
        return Err("--segments must be at least 1".into());
    }
    let app = parse_app(flag::<String>(rest, "--app")?.as_deref().unwrap_or("sim2"))?;
    let seed: u64 = flag(rest, "--seed")?.unwrap_or(0);
    let cache_path: Option<String> = flag(rest, "--cache")?;
    let trace_out: Option<String> = flag(rest, "--trace")?;
    let want_metrics = has_flag(rest, "--metrics");
    let want_critpath = has_flag(rest, "--critical-path");
    let want_slack = has_flag(rest, "--slack");
    let width: usize = flag(rest, "--width")?.unwrap_or(100);

    // The tuner engine for --variant auto: loaded from --cache when the file
    // exists, else seeded from the paper calibration.
    let engine = match &cache_path {
        Some(p) if Path::new(p).exists() => tuner::Engine::load(Path::new(p))?,
        _ => tuner::Engine::paper(),
    };

    // Per-rank fields: one base field, slightly rescaled per rank (same
    // compressibility profile, distinct values).
    let elems = kb.map(|k| (k << 10) / 4).unwrap_or(mb * (1 << 20) / 4).max(ranks);
    let base = app.generate(elems, seed);
    let fields: Vec<Vec<f32>> = (0..ranks)
        .map(|r| {
            let k = 1.0 + 0.001 * r as f32;
            base.iter().map(|&v| v * k).collect()
        })
        .collect();

    let cfg = CollectiveConfig::new(eb, mode);
    let timing = ComputeTiming::Modeled(hzccl::paper_model(variant.timing_variant(), mode));
    let net = netsim::NetConfig::default();
    let mut cluster = SimBuilder::new(ranks).net(net).timing(timing).trace(TraceConfig::default());
    if let Some(t) = topology {
        cluster = cluster.topology(t);
    }
    let report = cluster
        .run(|comm| {
            let data = &fields[comm.rank()];
            match variant {
                SimVariant::Auto => {
                    let tuner_op = tuner::Op::parse(op).expect("op validated above");
                    return run_auto(comm, tuner_op, data, &cfg, &engine, topology.as_ref());
                }
                SimVariant::Rd => {
                    hzccl::rd::allreduce_rd_hz(comm, data, &cfg).expect("rd allreduce");
                }
                SimVariant::Static(v) => {
                    let mut opts = hzccl::collectives::CollectiveOpts::for_variant(v, eb)
                        .with_mode(mode)
                        .with_segments(segments);
                    if let Some(t) = topology {
                        opts = opts.with_topology(t);
                    }
                    match op {
                        "allreduce" => {
                            hzccl::collectives::allreduce(comm, data, &opts).expect("allreduce");
                        }
                        "reduce_scatter" => {
                            hzccl::collectives::reduce_scatter(comm, data, &opts)
                                .expect("reduce_scatter");
                        }
                        "reduce" => {
                            hzccl::collectives::reduce(comm, data, &opts).expect("reduce");
                        }
                        "bcast" => {
                            hzccl::collectives::bcast(comm, data, &opts).expect("bcast");
                        }
                        _ => unreachable!("op validated above"),
                    }
                }
            }
            None
        })
        .expect_clean();
    let outcomes = &report.outcomes;

    // --- breakdown table ---------------------------------------------------
    let total = report.stats.total;
    let makespan = report.stats.makespan;
    let field_desc = match kb {
        Some(k) => format!("{k} KiB/rank"),
        None => format!("{mb} MiB/rank"),
    };
    println!(
        "sim {op}: variant={} ranks={ranks} field={field_desc} eb={eb:e} mode={mode:?} segments={segments}",
        variant.label()
    );
    if let Some(t) = &topology {
        println!(
            "topology: {} (intra {} Gb/s, inter {} Gb/s effective)",
            t.describe(),
            t.link(netsim::LinkTier::Intra).bandwidth_gbps,
            t.link(netsim::LinkTier::Inter).bandwidth_gbps,
        );
    }

    // --- the tuner's explanation (auto only) -------------------------------
    let auto_detail = outcomes[0].value.clone();
    if let Some((spec, decision)) = &auto_detail {
        println!();
        println!("auto plan: {} (source: {})", decision.plan.label(), decision.source.name());
        println!("why: {}", decision.why);
        println!("ranked predictions for bucket {}:", spec.bucket_key());
        for p in &decision.ranked {
            let marker = if p.plan == decision.plan { "->" } else { "  " };
            println!("  {marker} {:<16} {:>12.6} s", p.plan.label(), p.secs);
        }
        if let Some(p) = &cache_path {
            let mut engine = engine.clone();
            engine.observe_run(spec, &decision.plan, &report);
            engine.save(Path::new(p)).map_err(|e| format!("{p}: {e}"))?;
            println!("recorded {:.6} s into {p}", makespan);
        }
    }
    println!("makespan: {:.6} s (slowest rank)", makespan);
    println!();
    println!("{:<10} {:>14} {:>8}", "bucket", "seconds", "share");
    let grand = total.total();
    for (name, secs) in [
        ("cpr", total.cpr),
        ("dpr", total.dpr),
        ("hpr", total.hpr),
        ("cpt", total.cpt),
        ("mpi", total.mpi),
        ("other", total.other),
    ] {
        let share = if grand > 0.0 { secs * 100.0 / grand } else { 0.0 };
        println!("{name:<10} {secs:>14.6} {share:>7.2}%");
    }
    println!("{:<10} {grand:>14.6} {:>7.2}%", "total", 100.0);

    // --- per-rank timeline --------------------------------------------------
    let mut registry = netsim::Registry::new();
    registry.record_report(&report);
    let traces = &report.traces;
    println!();
    println!("{}", trace::ascii_timeline(traces, width));

    // --- causal critical-path analysis --------------------------------------
    let critpath = (want_critpath || want_slack)
        .then(|| netsim::CriticalPath::analyze_with_topology(traces, &net, topology.as_ref()));
    if let Some(cp) = critpath.as_ref().filter(|_| want_critpath) {
        print_critical_path(cp, makespan);
    }
    if let Some(cp) = critpath.as_ref().filter(|_| want_slack) {
        print_slack(cp, traces);
    }

    if want_metrics {
        println!(
            "{}",
            registry.render_histogram_ascii(
                "hz_step_compression_ratio",
                "per-step achieved compression ratio",
            )
        );
        println!("{}", registry.render_prometheus());
    }

    if let Some(path) = trace_out {
        let json = trace::chrome_trace_with(traces, critpath.as_ref());
        std::fs::write(&path, json).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "wrote Chrome trace to {path} (load in Perfetto / chrome://tracing{})",
            if critpath.is_some() { "; includes the critical-path overlay" } else { "" }
        );
    }
    Ok(())
}

/// Render the critical-path composition: cost buckets, per-rank share, and
/// the communication time folded per collective phase/step via
/// [`hzccl::decode_tag`].
fn print_critical_path(cp: &netsim::CriticalPath, makespan: f64) {
    println!();
    println!(
        "critical path: {:.6} s over {} span(s) (makespan {:.6} s, residual {:.1e})",
        cp.length,
        cp.elements.len(),
        makespan,
        (cp.length - makespan).abs()
    );
    println!();
    println!("{:<14} {:>14} {:>8}", "path bucket", "seconds", "share");
    for (name, secs) in cp.buckets.entries() {
        if secs == 0.0 {
            continue;
        }
        println!("{name:<14} {secs:>14.6} {:>7.2}%", secs * 100.0 / cp.length);
    }
    println!("{:<14} {:>14.6} {:>7.2}%", "total", cp.buckets.total(), 100.0);

    // per-tier communication attribution (two-tier runs only: flat runs
    // charge every hop to the Flat pseudo-tier, which this table elides)
    if netsim::LinkTier::ALL
        .iter()
        .any(|t| *t != netsim::LinkTier::Flat && cp.by_tier[t.index()].hops > 0)
    {
        println!();
        println!(
            "{:<10} {:>6} {:>12} {:>12} {:>12} {:>8}",
            "tier", "hops", "alpha s", "wire s", "jitter s", "share"
        );
        for t in netsim::LinkTier::ALL {
            let tt = cp.by_tier[t.index()];
            if tt.hops == 0 {
                continue;
            }
            println!(
                "{:<10} {:>6} {:>12.6} {:>12.6} {:>12.6} {:>7.2}%",
                t.name(),
                tt.hops,
                tt.alpha,
                tt.wire,
                tt.jitter,
                tt.total() * 100.0 / cp.length
            );
        }
    }

    println!();
    println!("{:<8} {:>14} {:>8}", "rank", "path s", "share");
    for (rank, secs) in cp.per_rank.iter().enumerate() {
        if *secs == 0.0 {
            continue;
        }
        println!("r{rank:<7} {secs:>14.6} {:>7.2}%", secs * 100.0 / cp.length);
    }

    // communication on the path, folded per collective phase/step/segment
    use std::collections::BTreeMap;
    let mut by_phase: BTreeMap<String, (u64, f64, f64, f64)> = BTreeMap::new();
    for (tag, t) in &cp.by_tag {
        let key = match hzccl::decode_tag(*tag) {
            Some(info) => {
                let ctrl = if info.ctrl { " (ctrl)" } else { "" };
                format!("{} step {:>3} seg {:>2}{ctrl}", info.phase, info.step, info.seg)
            }
            None => format!("tag {tag}"),
        };
        let e = by_phase.entry(key).or_default();
        e.0 += t.hops;
        e.1 += t.alpha;
        e.2 += t.wire;
        e.3 += t.jitter;
    }
    if !by_phase.is_empty() {
        println!();
        println!(
            "{:<26} {:>5} {:>12} {:>12} {:>12}",
            "phase/step/segment", "hops", "alpha s", "wire s", "jitter s"
        );
        for (key, (hops, alpha, wire, jitter)) in &by_phase {
            println!("{key:<26} {hops:>5} {alpha:>12.6} {wire:>12.6} {jitter:>12.6}");
        }
    }

    // compute on the path, by pipeline-step label
    if !cp.by_label.is_empty() {
        println!();
        println!("{:<26} {:>14}", "compute label", "path s");
        for (label, secs) in &cp.by_label {
            println!("{label:<26} {secs:>14.6}");
        }
    }
}

/// Render the slack view: how far each rank's schedule is from the path,
/// and which off-path events are nearly critical.
fn print_slack(cp: &netsim::CriticalPath, traces: &[netsim::RankTrace]) {
    println!();
    println!(
        "slack: {:.1}% of events within 1 µs of critical ({:.1}% within 1 ns)",
        cp.critical_fraction(1e-6) * 100.0,
        cp.critical_fraction(1e-9) * 100.0
    );
    println!();
    println!(
        "{:<8} {:>8} {:>10} {:>14} {:>14}",
        "rank", "events", "critical", "min>0 slack", "max slack"
    );
    for (rank, slacks) in cp.slack.iter().enumerate() {
        let critical = slacks.iter().filter(|&&s| s <= 1e-9).count();
        let min_pos = slacks.iter().copied().filter(|&s| s > 1e-9).fold(f64::INFINITY, f64::min);
        let max = slacks.iter().copied().fold(0.0f64, f64::max);
        println!(
            "r{rank:<7} {:>8} {:>10} {:>14} {:>14}",
            slacks.len(),
            critical,
            if min_pos.is_finite() { format!("{min_pos:.3e}") } else { "-".into() },
            format!("{max:.3e}"),
        );
    }
    // the nearest-miss events: smallest positive slack across all ranks
    let mut near: Vec<(f64, usize, usize)> = Vec::new();
    for (rank, slacks) in cp.slack.iter().enumerate() {
        for (idx, &s) in slacks.iter().enumerate() {
            if s > 1e-9 {
                near.push((s, rank, idx));
            }
        }
    }
    near.sort_by(|a, b| a.0.total_cmp(&b.0));
    if !near.is_empty() {
        println!();
        println!("nearest to critical:");
        for &(s, rank, idx) in near.iter().take(8) {
            println!(
                "  r{rank} event {idx} ({}) slack {s:.3e} s",
                event_name(&traces[rank].events[idx])
            );
        }
    }
}

/// Short human label for one trace event (slack listing).
fn event_name(ev: &netsim::Event) -> String {
    match ev {
        netsim::Event::Compute { kind, label, .. } => {
            if label.is_empty() {
                kind.name().to_string()
            } else {
                (*label).to_string()
            }
        }
        netsim::Event::Send { to, tag, .. } => format!("send->r{to} tag {tag}"),
        netsim::Event::Recv { from, tag, .. } => format!("recv<-r{from} tag {tag}"),
        netsim::Event::Fault { kind, .. } => format!("fault:{}", kind.name()),
    }
}

/// Run one auto collective on a rank and return the decider's detail.
fn run_auto(
    comm: &mut netsim::Comm,
    op: tuner::Op,
    data: &[f32],
    cfg: &hzccl::CollectiveConfig,
    engine: &tuner::Engine,
    topology: Option<&netsim::Topology>,
) -> Option<(tuner::ScenarioSpec, tuner::Decision)> {
    match op {
        tuner::Op::Allreduce => {
            hzccl::auto::allreduce(comm, data, cfg, engine, topology)
                .expect("auto allreduce")
                .detail
        }
        tuner::Op::ReduceScatter => {
            hzccl::auto::reduce_scatter(comm, data, cfg, engine).expect("auto rs").detail
        }
        tuner::Op::Reduce => {
            hzccl::auto::reduce(comm, data, 0, cfg, engine).expect("auto reduce").detail
        }
        tuner::Op::Bcast => {
            let full = if comm.rank() == 0 { data } else { &[] };
            hzccl::auto::bcast(comm, full, 0, data.len(), cfg, engine).expect("auto bcast").detail
        }
    }
}

/// Parse a comma-separated list of positive integers.
/// `hzc chaos`: soak the resilient collectives under injected faults. For
/// every drop rate × variant × op the sweep runs a fault-free baseline on
/// the stock (unframed) path, then the same collective under a seeded
/// [`FaultPlan`] with the resilient transport enabled, and checks the
/// results agree — bit-for-bit for `mpi` (retransmission is exact on raw
/// floats), within the compression error budget for `ccoll`/`hz` (a
/// degraded segment may re-quantize once). Retransmit/timeout/degraded
/// counters come from the flight recorder; exits nonzero if any run
/// diverges or if faults were injected but the transport never retried.
fn chaos(args: &[String]) -> Result<(), String> {
    use hzccl::{CollectiveOpts, Mode, Resilience, Variant};
    use netsim::{ComputeTiming, FaultPlan, SimBuilder, TraceConfig};

    let seed: u64 = flag(args, "--seed")?.unwrap_or(7);
    let ranks: usize = flag(args, "--ranks")?.unwrap_or(8);
    if ranks == 0 {
        return Err("--ranks must be at least 1".into());
    }
    let kb: usize = flag(args, "--kb")?.unwrap_or(64);
    let eb: f64 = flag(args, "--eb")?.unwrap_or(1e-4);
    let drops = parse_f64_list(
        flag::<String>(args, "--drop")?.as_deref().unwrap_or("0.01,0.05"),
        "--drop",
    )?;
    let corrupt: f64 = flag(args, "--corrupt")?.unwrap_or(0.01);
    let jitter: f64 = flag(args, "--jitter")?.unwrap_or(0.0);
    let app = parse_app(flag::<String>(args, "--app")?.as_deref().unwrap_or("sim2"))?;
    let crash_rates = match flag::<String>(args, "--crash-rate")? {
        Some(s) => parse_f64_list(&s, "--crash-rate")?,
        None => Vec::new(),
    };

    let elems = ((kb << 10) / 4).max(ranks);
    let base = app.generate(elems, seed);
    let fields: Vec<Vec<f32>> = (0..ranks)
        .map(|r| {
            let k = 1.0 + 0.001 * r as f32;
            base.iter().map(|&v| v * k).collect()
        })
        .collect();

    if !crash_rates.is_empty() {
        // crash recovery is a different fault class (whole ranks die, the
        // membership shrinks) with its own oracle, so it replaces the
        // message-level drop/corrupt soak for this invocation
        return chaos_crash(seed, ranks, eb, &fields, &crash_rates);
    }

    let variants = [("mpi", Variant::Mpi), ("ccoll", Variant::CColl), ("hz", Variant::Hzccl)];
    let ops = ["allreduce", "reduce_scatter"];
    println!(
        "chaos soak: ranks={ranks} field={kb} KiB/rank eb={eb:e} seed={seed} corrupt={corrupt} jitter={jitter}"
    );
    println!(
        "{:<6} {:<15} {:<8} {:>10} {:>9} {:>9} {:>7} {:>12} {:>10}",
        "drop", "op", "variant", "retrans", "timeouts", "degraded", "faults", "makespan", "max_err"
    );

    let mut failures: Vec<String> = Vec::new();
    let mut total_retrans = 0u64;
    let mut any_fault_rate = false;
    for &drop in &drops {
        any_fault_rate |= drop > 0.0 || corrupt > 0.0;
        for (vname, variant) in variants {
            let mode = Mode::SingleThread;
            let timing = ComputeTiming::Modeled(hzccl::paper_model(variant, mode));
            for op in ops {
                let opts = CollectiveOpts::for_variant(variant, eb).with_mode(mode);
                let run_one = |cluster: &SimBuilder, opts: &CollectiveOpts| {
                    cluster
                        .run(|comm| {
                            let data = &fields[comm.rank()];
                            match op {
                                "allreduce" => hzccl::collectives::allreduce(comm, data, opts)
                                    .expect("allreduce"),
                                _ => hzccl::collectives::reduce_scatter(comm, data, opts)
                                    .expect("reduce_scatter"),
                            }
                        })
                        .expect_clean()
                };
                // fault-free baseline on the stock (unframed) path
                let baseline = run_one(&SimBuilder::new(ranks).timing(timing), &opts);
                let plan =
                    FaultPlan::new(seed).with_drop(drop).with_corrupt(corrupt).with_jitter(jitter);
                let cluster = SimBuilder::new(ranks)
                    .timing(timing)
                    .trace(TraceConfig::default())
                    .faults(plan);
                let faulty =
                    run_one(&cluster, &opts.clone().with_resilience(Resilience::default()));

                let makespan = faulty.stats.makespan;
                let mut max_err = 0f64;
                for (b, f) in baseline.outcomes.iter().zip(&faulty.outcomes) {
                    for (x, y) in b.value.iter().zip(&f.value) {
                        max_err = max_err.max((x - y).abs() as f64);
                    }
                }
                // mpi retransmits raw floats verbatim; the compressed
                // flavours may re-quantize each degraded segment once
                let tol = if vname == "mpi" { 0.0 } else { (2.0 * ranks as f64 + 2.0) * eb };
                let mut registry = netsim::Registry::new();
                registry.record_report(&faulty);
                let retrans = registry.counter("hz_retransmits_total").unwrap_or(0);
                let timeouts = registry.counter("hz_timeouts_total").unwrap_or(0);
                let degraded = registry.counter("hz_degraded_segments_total").unwrap_or(0);
                let faults: u64 = ["drop", "corrupt", "jitter"]
                    .iter()
                    .filter_map(|k| {
                        registry.counter(&format!("hz_faults_injected_total{{kind=\"{k}\"}}"))
                    })
                    .sum();
                total_retrans += retrans;
                let ok = max_err <= tol;
                println!(
                    "{:<6} {:<15} {:<8} {:>10} {:>9} {:>9} {:>7} {:>12.6} {:>10.3e}{}",
                    drop,
                    op,
                    vname,
                    retrans,
                    timeouts,
                    degraded,
                    faults,
                    makespan,
                    max_err,
                    if ok { "" } else { "  DIVERGED" }
                );
                if !ok {
                    failures.push(format!(
                        "{op}/{vname} drop={drop}: max_err {max_err:e} exceeds tol {tol:e}"
                    ));
                }
            }
        }
    }
    if any_fault_rate && total_retrans == 0 {
        failures
            .push("faults were injected but the resilient transport never retransmitted".into());
    }
    if failures.is_empty() {
        println!("chaos soak passed ({} retransmits across the sweep)", total_retrans);
        Ok(())
    } else {
        Err(format!("chaos soak failed:\n  {}", failures.join("\n  ")))
    }
}

/// `hzc chaos --crash-rate`: the crash-recovery gate. For every rate the
/// sweep derives a deterministic victim set (1–3 ranks, always leaving a
/// survivor), runs a Shrink-policy recoverable allreduce per flavour under
/// the seeded crash plan, and gates on survivor-sum correctness: `mpi`
/// must reproduce the survivable ring's reduction order bit-for-bit, the
/// compressed flavours must agree bitwise across survivors and stay within
/// `(2m+2)·eb` of the exact f64 survivor sum. Recovery observability
/// (`hz_recoveries_total`, `hz_epochs`, `hz_survivors`) is read back from
/// the flight recorder; any divergence exits nonzero. Hangs are the CI
/// wrapper's job (`timeout` around the invocation).
fn chaos_crash(
    seed: u64,
    ranks: usize,
    eb: f64,
    fields: &[Vec<f32>],
    rates: &[f64],
) -> Result<(), String> {
    use hzccl::collectives::{allreduce_recoverable, RecoveryPolicy};
    use hzccl::{CollectiveOpts, Mode, Variant};
    use netsim::{ComputeTiming, FaultPlan, Registry, SimBuilder, TraceConfig};

    if ranks < 2 {
        return Err("--crash-rate needs at least 2 ranks (someone must survive)".into());
    }
    let n = fields[0].len();
    let variants = [("mpi", Variant::Mpi), ("ccoll", Variant::CColl), ("hz", Variant::Hzccl)];
    // the seeded deaths are the point of the exercise: keep their panic
    // reports off stderr so the table stays readable, and delegate anything
    // unexpected to the stock hook (the process exits right after the sweep,
    // so the hook is not restored)
    let stock_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !(msg.contains("crashed by fault plan") || msg.contains("observed crash of rank")) {
            stock_hook(info);
        }
    }));
    println!("crash-recovery gate: ranks={ranks} elems={n} eb={eb:e} seed={seed} policy=shrink");
    println!(
        "{:<6} {:<8} {:<14} {:>6} {:>11} {:>10} {:>11}",
        "rate", "variant", "crashed", "epoch", "recoveries", "survivors", "max_err"
    );

    let mut failures: Vec<String> = Vec::new();
    for (ri, &rate) in rates.iter().enumerate() {
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("--crash-rate entries must lie in [0, 1], got {rate}"));
        }
        // deterministic victim set: rate scales the crash count, capped at
        // three deaths and never the whole communicator
        let want = ((rate * ranks as f64).ceil() as usize).clamp(1, 3.min(ranks - 1));
        let mut dead: Vec<usize> = Vec::new();
        let mut ctr = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(ri as u64 + 1);
        while dead.len() < want {
            ctr = ctr.wrapping_add(1);
            let r = (splitmix(ctr) % ranks as u64) as usize;
            if !dead.contains(&r) {
                dead.push(r);
            }
        }
        dead.sort_unstable();
        let mut plan = FaultPlan::new(seed);
        // a rank makes 2(ranks-1) data-plane sends per attempt; keep the
        // seeded step below that so every victim dies in the first attempt
        // even on tiny communicators
        let max_step = (2 * (ranks as u64 - 1) - 1).clamp(1, 6);
        for (i, &r) in dead.iter().enumerate() {
            plan = plan.with_crash(r, 1 + splitmix(ctr ^ (i as u64 + 0x51)) % max_step);
        }
        let survivors: Vec<usize> = (0..ranks).filter(|r| !dead.contains(r)).collect();
        let m = survivors.len();
        let oracle = crash_survivor_sum(fields, &survivors);
        let exact = crash_mpi_expected(fields, &survivors);
        for (vname, variant) in variants {
            let mode = Mode::SingleThread;
            let timing = ComputeTiming::Modeled(hzccl::paper_model(variant, mode));
            let opts = CollectiveOpts::for_variant(variant, eb)
                .with_mode(mode)
                .with_recovery(RecoveryPolicy::Shrink);
            let report = SimBuilder::new(ranks)
                .timing(timing)
                .trace(TraceConfig::default())
                .faults(plan.clone())
                .run(|comm| {
                    let data = &fields[comm.rank()];
                    allreduce_recoverable(comm, data, &opts).expect("recoverable allreduce")
                });
            let mut errs: Vec<String> = Vec::new();
            for &r in &dead {
                match report.panic_of(r) {
                    Some(p) if p.message.contains("crashed by fault plan") => {}
                    Some(p) => {
                        errs.push(format!("rank {r} died for the wrong reason: {}", p.message))
                    }
                    None => errs.push(format!("seeded victim {r} never crashed")),
                }
            }
            let first = report.value(survivors[0]);
            let mut max_err = 0f64;
            for &r in &survivors {
                let got = report.value(r);
                if got.contributors != survivors {
                    errs.push(format!(
                        "rank {r}: contributors {:?} != survivors",
                        got.contributors
                    ));
                }
                if got.epoch < 1 || got.epoch as usize > dead.len() {
                    errs.push(format!("rank {r}: epoch {} outside 1..={}", got.epoch, dead.len()));
                }
                if got.epoch != first.epoch {
                    errs.push(format!(
                        "rank {r}: epoch {} disagrees with {}",
                        got.epoch, first.epoch
                    ));
                }
                if vname == "mpi" {
                    if got.value != exact {
                        errs.push(format!("rank {r}: mpi survivor sum not bit-exact"));
                    }
                } else if got.value != first.value {
                    errs.push(format!("rank {r}: compressed survivors disagree bitwise"));
                }
                // mpi is gated against the replicated reduction order (bit
                // exact); the compressed flavours against the f64 oracle
                if vname == "mpi" {
                    for (a, b) in got.value.iter().zip(&exact) {
                        max_err = max_err.max((f64::from(*a) - f64::from(*b)).abs());
                    }
                } else {
                    for (a, b) in got.value.iter().zip(&oracle) {
                        max_err = max_err.max((f64::from(*a) - b).abs());
                    }
                }
            }
            let tol =
                if vname == "mpi" { 0.0 } else { hzccl::error_bounds::shrink_allreduce(m, eb) };
            if max_err > tol {
                errs.push(format!("max_err {max_err:e} exceeds tol {tol:e}"));
            }
            let mut registry = Registry::new();
            registry.record_report(&report);
            let recoveries = registry.counter("hz_recoveries_total").unwrap_or(0);
            let epoch_gauge = registry.gauge("hz_epochs").unwrap_or(0.0);
            let surv_gauge = registry.gauge("hz_survivors").unwrap_or(0.0);
            if recoveries == 0 {
                errs.push("no recovery counted despite seeded crashes".into());
            }
            if surv_gauge != m as f64 {
                errs.push(format!("hz_survivors gauge {surv_gauge} != {m}"));
            }
            println!(
                "{:<6} {:<8} {:<14} {:>6} {:>11} {:>10} {:>11.3e}{}",
                rate,
                vname,
                format!("{dead:?}"),
                epoch_gauge,
                recoveries,
                surv_gauge,
                max_err,
                if errs.is_empty() { "" } else { "  DIVERGED" }
            );
            failures.extend(errs.into_iter().map(|e| format!("{vname} rate={rate}: {e}")));
        }
    }
    if failures.is_empty() {
        println!("crash-recovery gate passed");
        Ok(())
    } else {
        Err(format!("crash-recovery gate failed:\n  {}", failures.join("\n  ")))
    }
}

/// splitmix64 finalizer: the deterministic victim picker of the crash gate.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exact f64 survivor sum — the accuracy oracle for the compressed flavours.
fn crash_survivor_sum(fields: &[Vec<f32>], survivors: &[usize]) -> Vec<f64> {
    let mut acc = vec![0f64; fields[0].len()];
    for &r in survivors {
        for (a, &b) in acc.iter_mut().zip(&fields[r]) {
            *a += f64::from(b);
        }
    }
    acc
}

/// Replicate the survivable mpi ring's reduction order: the accumulator of
/// segment group `g` originates at virtual rank `(g+1) % m` and folds one
/// member per hop until the owner adds its own share last. f32 addition is
/// bitwise commutative, so this left fold is the bit-exact expectation.
fn crash_mpi_expected(fields: &[Vec<f32>], survivors: &[usize]) -> Vec<f32> {
    let n0 = fields.len();
    let n = fields[0].len();
    let m = survivors.len();
    let ranges = hzccl::chunks::node_chunks(n, n0);
    let groups = hzccl::chunks::node_chunks(n0, m);
    let mut out = vec![0f32; n];
    for (g, segs) in groups.iter().enumerate() {
        for seg in segs.clone() {
            for i in ranges[seg].clone() {
                let mut acc = fields[survivors[(g + 1) % m]][i];
                for k in 2..=m {
                    acc += fields[survivors[(g + k) % m]][i];
                }
                out[i] = acc;
            }
        }
    }
    out
}

/// Comma-separated f64 list, e.g. `0.01,0.05`.
fn parse_f64_list(s: &str, what: &str) -> Result<Vec<f64>, String> {
    s.split(',')
        .map(|t| t.trim().parse::<f64>().map_err(|_| format!("invalid value '{t}' in {what}")))
        .collect()
}

fn parse_list(s: &str, what: &str) -> Result<Vec<usize>, String> {
    let out: Vec<usize> = s
        .split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| t.trim().parse::<usize>().map_err(|_| format!("invalid {what} entry '{t}'")))
        .collect::<Result<_, _>>()?;
    if out.is_empty() {
        return Err(format!("empty {what} list"));
    }
    if out.contains(&0) {
        return Err(format!("{what} entries must be positive"));
    }
    Ok(out)
}

/// Run one static plan over the simulated cluster (used by `hzc tune`).
fn run_tune_plan(
    comm: &mut netsim::Comm,
    op: tuner::Op,
    plan: &tuner::Plan,
    data: &[f32],
    eb: f64,
) {
    use hzccl::collectives::{self, CollectiveOpts};
    use tuner::{Algo, Flavor, ThreadMode};
    let mode = match plan.mode {
        ThreadMode::St => hzccl::Mode::SingleThread,
        ThreadMode::Mt(k) => hzccl::Mode::MultiThread(k),
    };
    // Recursive doubling stays on its dedicated entry points; everything
    // else routes through the unified collectives front-end so the plan's
    // segment count is honoured.
    match (op, plan.flavor, plan.algo) {
        (tuner::Op::Allreduce, Flavor::Mpi, Algo::Rd) => {
            hzccl::rd::allreduce_rd(comm, data, mode.threads());
            return;
        }
        (tuner::Op::Allreduce, Flavor::Hzccl, Algo::Rd) => {
            let cfg = hzccl::CollectiveConfig { eb, block_len: plan.block_len, mode, res: None };
            hzccl::rd::allreduce_rd_hz(comm, data, &cfg).expect("tune hz rd");
            return;
        }
        _ => {}
    }
    let variant = match plan.flavor {
        Flavor::Mpi => hzccl::Variant::Mpi,
        Flavor::CColl => hzccl::Variant::CColl,
        Flavor::Hzccl => hzccl::Variant::Hzccl,
    };
    let opts = CollectiveOpts::for_variant(variant, eb)
        .with_mode(mode)
        .with_block_len(plan.block_len)
        .with_segments(plan.segments);
    match op {
        tuner::Op::Allreduce => {
            collectives::allreduce(comm, data, &opts).expect("tune allreduce");
        }
        tuner::Op::ReduceScatter => {
            collectives::reduce_scatter(comm, data, &opts).expect("tune reduce_scatter");
        }
        tuner::Op::Reduce => {
            collectives::reduce(comm, data, &opts).expect("tune reduce");
        }
        tuner::Op::Bcast => {
            collectives::bcast(comm, data, &opts).expect("tune bcast");
        }
    }
}

/// `hzc tune`: offline sweep. For every `(op, rank count, size)` scenario,
/// measure every candidate static plan on the virtual cluster, feed each
/// run's flight-recorder traces to the calibration loop, record winners in
/// the tuning cache, and persist the engine state to `--out` — ready for
/// `hzc sim --variant auto --cache <out>`.
fn tune(args: &[String]) -> Result<(), String> {
    use netsim::{ComputeTiming, SimBuilder, TraceConfig};

    let ops: Vec<tuner::Op> = flag::<String>(args, "--ops")?
        .unwrap_or_else(|| "allreduce".into())
        .split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| tuner::Op::parse(t.trim()).ok_or_else(|| format!("unknown op '{t}'")))
        .collect::<Result<_, _>>()?;
    if ops.is_empty() {
        return Err("empty --ops list".into());
    }
    let ranks_list =
        parse_list(flag::<String>(args, "--ranks")?.as_deref().unwrap_or("8"), "--ranks")?;
    let sizes_kb = parse_list(
        flag::<String>(args, "--sizes-kb")?.as_deref().unwrap_or("16,256,1024"),
        "--sizes-kb",
    )?;
    let eb: f64 = flag(args, "--eb")?.unwrap_or(1e-4);
    let app = parse_app(flag::<String>(args, "--app")?.as_deref().unwrap_or("sim2"))?;
    let seed: u64 = flag(args, "--seed")?.unwrap_or(0);
    let out: String = flag(args, "--out")?.unwrap_or_else(|| "hz_tune.json".into());

    // Resume an existing state file, otherwise start from the paper prior.
    let mut engine = if Path::new(&out).exists() {
        tuner::Engine::load(Path::new(&out))?
    } else {
        tuner::Engine::paper()
    };

    println!(
        "tune: ops={:?} ranks={ranks_list:?} sizes_kb={sizes_kb:?} eb={eb:e} app={} -> {out}",
        ops.iter().map(|o| o.name()).collect::<Vec<_>>(),
        app.name(),
    );
    println!();
    println!(
        "{:<16} {:<26} {:<16} {:>12} {:>12}",
        "scenario", "bucket", "plan", "measured", "model"
    );

    for &op in &ops {
        for &nranks in &ranks_list {
            for &kb in &sizes_kb {
                let elems = (kb * 1024 / 4).max(1);
                let base = app.generate(elems, seed);
                let fields: Vec<Vec<f32>> = (0..nranks)
                    .map(|r| {
                        let k = 1.0 + 0.001 * r as f32;
                        base.iter().map(|&v| v * k).collect()
                    })
                    .collect();

                // Offline ratio probe per candidate block length.
                let sample = &base[..base.len().min(hzccl::auto::PROBE_ELEMS)];
                let ratios: Vec<(usize, f64)> = engine
                    .block_candidates
                    .iter()
                    .map(|&b| {
                        let fz = fzlight::Config::new(ErrorBound::Abs(eb)).with_block_len(b);
                        let ratio = fzlight::compress(sample, &fz)
                            .map(|s| (sample.len() * 4) as f64 / s.compressed_size().max(1) as f64)
                            .unwrap_or(1.0);
                        (b, ratio.max(1.0))
                    })
                    .collect();
                let spec = tuner::ScenarioSpec { op, elems, nranks, eb, ratios, topology: None };
                let scenario_label = format!("{}:{}r:{}K", op.name(), nranks, kb);

                for plan in engine.candidates(&spec) {
                    let timing = ComputeTiming::Modeled(engine.calib.model(plan.flavor, plan.mode));
                    let cluster = SimBuilder::new(nranks)
                        .net(netsim::NetConfig::default())
                        .timing(timing)
                        .trace(TraceConfig::default());
                    let report = cluster
                        .run(|comm| {
                            run_tune_plan(comm, op, &plan, &fields[comm.rank()], eb);
                        })
                        .expect_clean();
                    let model = engine.predict(&spec, &plan);
                    let measured = engine.observe_run(&spec, &plan, &report);
                    println!(
                        "{:<16} {:<26} {:<16} {:>10.6}s {:>10.6}s",
                        scenario_label,
                        spec.bucket_key(),
                        plan.label(),
                        measured,
                        model,
                    );
                }
            }
        }
    }

    engine.save(Path::new(&out)).map_err(|e| format!("{out}: {e}"))?;
    println!();
    println!(
        "saved tuner state to {out}: {} bucket(s), {} calibration run(s) absorbed",
        engine.cache.len(),
        engine.calib.samples,
    );
    for (key, e) in &engine.cache.entries {
        println!(
            "  {key}: {} at {:.6} s ({} sample(s))",
            e.plan.label(),
            e.measured_secs,
            e.samples
        );
    }
    Ok(())
}
