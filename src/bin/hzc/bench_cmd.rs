//! `hzc bench` — the deterministic perf-regression harness.
//!
//! Runs a canonical paper-calibrated suite entirely on the virtual clock
//! ([`hzccl_bench::suite`]), writes a versioned snapshot
//! (`BENCH_results.json`, [`hzccl_bench::snapshot`]), and — with
//! `--against <file>` — diffs the run against a baseline snapshot with
//! per-case tolerances, exiting nonzero on any regression. Because every
//! case is bit-deterministic, a nonzero exit is a real perf change, never
//! noise.

use crate::{flag, has_flag, parse_app, parse_list};
use hzccl_bench::snapshot::{self, Snapshot};
use hzccl_bench::suite::{self, CaseResult, CaseSpec, SuiteConfig};
use hzccl_bench::CollOp;

pub(crate) fn bench(args: &[String]) -> Result<(), String> {
    let quick = has_flag(args, "--quick");
    let out: String = flag(args, "--out")?.unwrap_or_else(|| "BENCH_results.json".into());
    let against: Option<String> = flag(args, "--against")?;
    let tol_time: f64 = flag(args, "--tol-time")?.unwrap_or(0.05);
    let tol_bytes: f64 = flag(args, "--tol-bytes")?.unwrap_or(0.01);
    let mut cfg = SuiteConfig::default();
    cfg.seed = flag(args, "--seed")?.unwrap_or(cfg.seed);
    cfg.eb = flag(args, "--eb")?.unwrap_or(cfg.eb);
    if let Some(app) = flag::<String>(args, "--app")? {
        cfg.app = parse_app(&app)?;
    }
    if let Some(engine) = flag::<String>(args, "--engine")? {
        cfg.engine = netsim::SimEngine::parse(&engine)
            .ok_or_else(|| format!("unknown engine '{engine}' (events|threads)"))?;
    }

    let (suite_name, cases) = select_cases(args, quick)?;
    println!(
        "bench: suite={suite_name} cases={} seed={} eb={:e} app={} engine={} (virtual time, deterministic)",
        cases.len(),
        cfg.seed,
        cfg.eb,
        cfg.app.name(),
        cfg.engine.name()
    );
    println!();
    println!(
        "{:<40} {:>12} {:>12} {:>7} {:>12}",
        "case", "virtual_s", "wire_bytes", "comm%", "p99_s"
    );
    let results = suite::run_suite(&cases, &cfg, |r| {
        let cp = &r.critpath.buckets;
        let comm = cp.alpha + cp.wire + cp.jitter;
        let share = if r.critpath.length > 0.0 { comm * 100.0 / r.critpath.length } else { 0.0 };
        println!(
            "{:<40} {:>12.6} {:>12} {:>6.1}% {:>12.6}",
            r.spec.id(),
            r.virtual_secs,
            r.wire_bytes,
            share,
            r.latency_p99
        );
    });
    sanity_check(&results)?;

    let snap = Snapshot::from_results(&suite_name, &cfg, &results);
    std::fs::write(&out, snap.render()).map_err(|e| format!("{out}: {e}"))?;
    println!();
    println!("wrote {} case(s) to {out} (schema v{})", snap.cases.len(), snapshot::SCHEMA_VERSION);

    if let Some(baseline_path) = against {
        let text =
            std::fs::read_to_string(&baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
        let baseline = Snapshot::parse(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
        let report = snapshot::diff(&baseline, &snap, tol_time, tol_bytes);
        render_report(&baseline_path, &report, tol_time, tol_bytes);
        if !report.regressions().is_empty() {
            // A perf regression is a check failure, not a usage error:
            // skip the usage banner and exit nonzero directly.
            std::process::exit(2);
        }
    }
    Ok(())
}

/// The case list: `--scale` (the large-rank-count family), `--quick`/default
/// sweeps, or a custom sweep constructed from
/// `--ops/--variants/--ranks-list/--sizes-kb/--segments-list`.
fn select_cases(args: &[String], quick: bool) -> Result<(String, Vec<CaseSpec>), String> {
    if has_flag(args, "--scale") {
        return Ok(("scale".into(), suite::scale_cases()));
    }
    let custom = ["--ops", "--variants", "--ranks-list", "--sizes-kb", "--segments-list"]
        .iter()
        .any(|f| args.iter().any(|a| a == f));
    if !custom {
        return Ok(if quick {
            ("quick".into(), suite::quick_cases())
        } else {
            ("canonical".into(), suite::canonical_cases())
        });
    }
    let ops = flag::<String>(args, "--ops")?
        .unwrap_or_else(|| "allreduce,reduce_scatter".into())
        .split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| match t.trim() {
            "allreduce" => Ok(CollOp::Allreduce),
            "reduce_scatter" => Ok(CollOp::ReduceScatter),
            other => Err(format!("unknown op '{other}' (allreduce|reduce_scatter)")),
        })
        .collect::<Result<Vec<_>, _>>()?;
    let variants = flag::<String>(args, "--variants")?
        .unwrap_or_else(|| "mpi,ccoll,hz,auto".into())
        .split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| {
            hzccl::Variant::parse(t.trim())
                .ok_or_else(|| format!("unknown variant '{t}' (mpi|ccoll|hz|auto)"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let ranks_list = parse_list(
        flag::<String>(args, "--ranks-list")?.as_deref().unwrap_or("8"),
        "--ranks-list",
    )?;
    let sizes_kb = parse_list(
        flag::<String>(args, "--sizes-kb")?.as_deref().unwrap_or("16,256"),
        "--sizes-kb",
    )?;
    let segments_list = parse_list(
        flag::<String>(args, "--segments-list")?.as_deref().unwrap_or("1,8"),
        "--segments-list",
    )?;
    let include_fault = !has_flag(args, "--no-fault");
    let cases =
        suite::build_cases(&ops, &variants, &ranks_list, &sizes_kb, &segments_list, include_fault);
    if cases.is_empty() {
        return Err("the requested sweep is empty".into());
    }
    Ok(("custom".into(), cases))
}

/// The analyzer's invariant, enforced on every case of every bench run: the
/// critical path must tile the run exactly.
fn sanity_check(results: &[CaseResult]) -> Result<(), String> {
    for r in results {
        let rel =
            (r.critpath.length - r.virtual_secs).abs() / r.virtual_secs.max(f64::MIN_POSITIVE);
        if rel > 1e-9 {
            return Err(format!(
                "critical-path invariant violated on {}: path {} vs makespan {} (rel {rel:e})",
                r.spec.id(),
                r.critpath.length,
                r.virtual_secs
            ));
        }
    }
    Ok(())
}

fn render_report(
    baseline_path: &str,
    report: &snapshot::DiffReport,
    tol_time: f64,
    tol_bytes: f64,
) {
    println!();
    println!(
        "against {baseline_path}: {} case(s) compared (tol time {:.1}%, bytes {:.1}%)",
        report.compared.len(),
        tol_time * 100.0,
        tol_bytes * 100.0
    );
    for id in &report.only_old {
        println!("  skipped (baseline only): {id}");
    }
    for id in &report.only_new {
        println!("  new (no baseline): {id}");
    }
    let regs = report.regressions();
    if regs.is_empty() {
        println!("no regressions");
        return;
    }
    println!();
    println!(
        "{:<40} {:>12} {:>12} {:>8} {:>12} {:>12}",
        "REGRESSED case", "base_s", "now_s", "time", "base_bytes", "now_bytes"
    );
    for d in &regs {
        println!(
            "{:<40} {:>12.6} {:>12.6} {:>+7.1}% {:>12} {:>12}",
            d.id,
            d.old_secs,
            d.new_secs,
            d.time_delta() * 100.0,
            d.old_wire,
            d.new_wire
        );
    }
    println!();
    println!("{} regression(s)", regs.len());
}
