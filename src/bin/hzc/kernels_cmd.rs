//! `hzc kernels` — the kernel micro-benchmark harness.
//!
//! Times the overhauled hot kernels (bitshuffle encode/decode, block
//! quantization, homomorphic sum) against their retained scalar references
//! ([`hzccl_bench::kernel_throughput`]), verifies the fast paths are
//! byte-identical before any timing, and prints a Table IV-style report:
//! fast/scalar GB/s, speedup, and memory-bandwidth efficiency relative to
//! this host's STREAM peak.
//!
//! `--out` additionally writes the bit-stable `BENCH_kernels.json` snapshot
//! (kernel output sizes + checksums on a fixed canonical input — never
//! wall-clock), and `--check` verifies a committed snapshot, exiting nonzero
//! on any output drift. `--gate R` enforces a minimum speedup on the gated
//! kernels (a release-build acceptance check; skip it on debug builds or
//! noisy shared runners).

use crate::{flag, has_flag};
use hzccl_bench::kernel_throughput::{
    canonical_snapshot, run_kernel_bench, verify_snapshot, KernelBenchConfig,
    SNAPSHOT_SCHEMA_VERSION,
};
use hzccl_bench::Table;

pub(crate) fn kernels(args: &[String]) -> Result<(), String> {
    let quick = has_flag(args, "--quick");
    let mut cfg = if quick { KernelBenchConfig::quick() } else { KernelBenchConfig::full() };
    if let Some(elems) = flag(args, "--elems")? {
        cfg.elems = elems;
    }
    if cfg.elems == 0 {
        return Err("--elems must be at least 1".into());
    }
    if let Some(trials) = flag(args, "--trials")? {
        cfg.trials = trials;
    }
    if let Some(threads) = flag(args, "--threads")? {
        cfg.threads = threads;
    }
    if cfg.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let gate: Option<f64> = flag(args, "--gate")?;
    let out: Option<String> = flag(args, "--out")?;
    let check: Option<String> = flag(args, "--check")?;

    // Snapshot modes are deterministic and need no timing (so they work on
    // debug builds and loaded CI runners); they skip the timed report.
    if check.is_some() || out.is_some() {
        if let Some(path) = &check {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            match verify_snapshot(&text) {
                Ok(()) => println!(
                    "{path}: kernel outputs match the canonical input (schema v{SNAPSHOT_SCHEMA_VERSION})"
                ),
                Err(msg) => {
                    eprintln!("{path}: {msg}");
                    std::process::exit(2);
                }
            }
        }
        if let Some(path) = &out {
            std::fs::write(path, canonical_snapshot()).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "wrote bit-stable kernel snapshot to {path} (schema v{SNAPSHOT_SCHEMA_VERSION})"
            );
        }
        return Ok(());
    }

    println!(
        "kernels: elems={} ({} MiB field) trials={} threads={}{}",
        cfg.elems,
        (cfg.elems * 4) >> 20,
        cfg.trials,
        cfg.threads,
        if cfg!(debug_assertions) { "  [debug build: timings not meaningful]" } else { "" }
    );
    let report = run_kernel_bench(&cfg);
    let peak = report.stream.peak();
    println!(
        "STREAM peak on this host: {peak:.2} GB/s (copy {:.2}, scale {:.2}, add {:.2}, triad {:.2})",
        report.stream.copy, report.stream.scale, report.stream.add, report.stream.triad
    );
    println!();
    let t = Table::new(&[
        ("kernel", 18),
        ("fast GB/s", 10),
        ("scalar GB/s", 11),
        ("speedup", 8),
        ("% of STREAM", 11),
    ]);
    for k in &report.kernels {
        t.row(&[
            k.name.to_string(),
            format!("{:.2}", k.fast_gbps()),
            format!("{:.2}", k.scalar_gbps()),
            format!("{:.2}x", k.speedup()),
            format!("{:.1}%", k.efficiency_pct(peak)),
        ]);
    }
    println!();
    println!("(throughput = logical f32 bytes / wall time, Table IV convention; every fast");
    println!(" kernel was verified byte-identical to its scalar reference before timing)");

    if let Some(min) = gate {
        let failing: Vec<String> = report
            .kernels
            .iter()
            .filter(|k| k.gated && k.speedup() < min)
            .map(|k| format!("{} at {:.2}x", k.name, k.speedup()))
            .collect();
        if failing.is_empty() {
            println!("gate: all gated kernels at or above {min:.2}x over the scalar reference");
        } else {
            eprintln!("gate FAILED (< {min:.2}x): {}", failing.join(", "));
            std::process::exit(2);
        }
    }
    Ok(())
}
