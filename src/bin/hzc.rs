//! `hzc` — command-line front end for the hZCCL compression stack.
//!
//! ```text
//! hzc gen <app> <out.f32> [--mb N] [--seed S]     generate a synthetic field
//! hzc compress <in.f32> <out.fzl> [--eb E] [--rel E] [--threads T] [--block B]
//! hzc decompress <in.fzl> <out.f32>
//! hzc info <in.fzl>                                header + block statistics
//! hzc sum <a.fzl> <b.fzl> <out.fzl>                homomorphic a + b
//! hzc diff <a.fzl> <b.fzl> <out.fzl>               homomorphic a - b
//! hzc check <in.f32> <stream.fzl>                  verify the error bound
//! hzc sim <op> [--ranks N] [--mb M] [--variant V]  run a simulated collective
//! ```
//!
//! `.f32` files are raw little-endian floats (the SDRBench layout); `<app>`
//! is one of `sim1`, `sim2`, `nyx`, `cesm`, `hurricane`.

use datasets::{App, Quality};
use fzlight::{CompressedStream, Config, ErrorBound, StreamStats};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("hzc: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  hzc gen <sim1|sim2|nyx|cesm|hurricane> <out.f32> [--mb N] [--seed S]
  hzc compress <in.f32> <out.fzl> [--eb E | --rel E] [--threads T] [--block B]
  hzc decompress <in.fzl> <out.f32>
  hzc info <in.fzl>
  hzc sum <a.fzl> <b.fzl> <out.fzl>
  hzc diff <a.fzl> <b.fzl> <out.fzl>
  hzc check <in.f32> <stream.fzl>
  hzc sim <allreduce|reduce_scatter|reduce|bcast> [--ranks N] [--mb M]
          [--variant hz|ccoll|mpi] [--eb E] [--threads T] [--app A] [--seed S]
          [--trace out.json] [--metrics] [--width W]";

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing command")?;
    let rest = &args[1..];
    match cmd.as_str() {
        "gen" => gen(rest),
        "compress" => compress(rest),
        "decompress" => decompress(rest),
        "info" => info(rest),
        "sum" => reduce(rest, hzdyn::ReduceOp::Sum),
        "diff" => reduce(rest, hzdyn::ReduceOp::Diff),
        "check" => check(rest),
        "sim" => sim(rest),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Fetch the value following `--flag`, parsed.
fn flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == name {
            let v = args.get(i + 1).ok_or_else(|| format!("{name} needs a value"))?;
            return v.parse().map(Some).map_err(|_| format!("invalid value '{v}' for {name}"));
        }
    }
    Ok(None)
}

fn positional<'a>(args: &'a [String], idx: usize, what: &str) -> Result<&'a String, String> {
    let mut seen = 0;
    for a in args {
        if a.starts_with("--") {
            // skip the flag and its value
            continue;
        }
        if seen == idx {
            return Ok(a);
        }
        seen += 1;
    }
    Err(format!("missing {what}"))
}

/// Positional args ignoring `--flag value` pairs.
fn positionals(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        out.push(a);
    }
    out
}

fn gen(args: &[String]) -> Result<(), String> {
    let pos = positionals(args);
    let app = match pos.first().map(|s| s.as_str()) {
        Some("sim1") => App::SimSet1,
        Some("sim2") => App::SimSet2,
        Some("nyx") => App::Nyx,
        Some("cesm") => App::CesmAtm,
        Some("hurricane") => App::Hurricane,
        Some(other) => return Err(format!("unknown app '{other}'")),
        None => return Err("missing app".into()),
    };
    let out = pos.get(1).ok_or("missing output path")?;
    let mb: usize = flag(args, "--mb")?.unwrap_or(16);
    let seed: u64 = flag(args, "--seed")?.unwrap_or(0);
    let data = app.generate(mb * (1 << 20) / 4, seed);
    datasets::save_f32(Path::new(out), &data).map_err(|e| e.to_string())?;
    println!("wrote {out}: {} ({} MiB, seed {seed})", app.name(), mb);
    Ok(())
}

fn compress(args: &[String]) -> Result<(), String> {
    let input = positional(args, 0, "input .f32")?;
    let output = positional(args, 1, "output .fzl")?;
    let abs: Option<f64> = flag(args, "--eb")?;
    let rel: Option<f64> = flag(args, "--rel")?;
    let eb = match (abs, rel) {
        (Some(_), Some(_)) => return Err("--eb and --rel are mutually exclusive".into()),
        (Some(e), None) => ErrorBound::Abs(e),
        (None, Some(e)) => ErrorBound::Rel(e),
        (None, None) => ErrorBound::Abs(1e-4),
    };
    let threads: usize = flag(args, "--threads")?
        .unwrap_or_else(|| std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1));
    let block: usize = flag(args, "--block")?.unwrap_or(fzlight::DEFAULT_BLOCK_LEN);
    let data = datasets::load_f32(Path::new(input)).map_err(|e| e.to_string())?;
    let cfg = Config::new(eb).with_threads(threads).with_block_len(block);
    let t0 = std::time::Instant::now();
    let stream = fzlight::compress(&data, &cfg).map_err(|e| e.to_string())?;
    let dt = t0.elapsed().as_secs_f64();
    std::fs::write(output, stream.as_bytes()).map_err(|e| e.to_string())?;
    println!(
        "{input} -> {output}: {} -> {} bytes (ratio {:.2}) in {:.3}s ({:.2} GB/s)",
        data.len() * 4,
        stream.compressed_size(),
        stream.ratio(),
        dt,
        (data.len() * 4) as f64 / dt / 1e9
    );
    Ok(())
}

fn decompress(args: &[String]) -> Result<(), String> {
    let input = positional(args, 0, "input .fzl")?;
    let output = positional(args, 1, "output .f32")?;
    let stream = load_stream(input)?;
    let t0 = std::time::Instant::now();
    let data = fzlight::decompress(&stream).map_err(|e| e.to_string())?;
    let dt = t0.elapsed().as_secs_f64();
    datasets::save_f32(Path::new(output), &data).map_err(|e| e.to_string())?;
    println!(
        "{input} -> {output}: {} values in {:.3}s ({:.2} GB/s)",
        data.len(),
        dt,
        (data.len() * 4) as f64 / dt / 1e9
    );
    Ok(())
}

fn info(args: &[String]) -> Result<(), String> {
    let input = positional(args, 0, "input .fzl")?;
    let stream = load_stream(input)?;
    let h = stream.header();
    println!("{input}:");
    println!(
        "  n = {} f32 ({} bytes raw), abs eb = {:e}, block_len = {}, chunks = {}",
        h.n,
        h.n * 4,
        h.eb,
        h.block_len,
        h.nchunks
    );
    let stats = StreamStats::inspect(&stream).map_err(|e| e.to_string())?;
    println!("  {stats}");
    Ok(())
}

fn reduce(args: &[String], op: hzdyn::ReduceOp) -> Result<(), String> {
    let a = positional(args, 0, "first .fzl")?;
    let b = positional(args, 1, "second .fzl")?;
    let out = positional(args, 2, "output .fzl")?;
    let sa = load_stream(a)?;
    let sb = load_stream(b)?;
    let t0 = std::time::Instant::now();
    let result = hzdyn::homomorphic_op(&sa, &sb, op).map_err(|e| e.to_string())?;
    let dt = t0.elapsed().as_secs_f64();
    std::fs::write(out, result.as_bytes()).map_err(|e| e.to_string())?;
    println!(
        "{a} {op:?} {b} -> {out} ({} bytes, ratio {:.2}) in {:.3}s — no decompression performed",
        result.compressed_size(),
        result.ratio(),
        dt
    );
    Ok(())
}

fn check(args: &[String]) -> Result<(), String> {
    let original = positional(args, 0, "original .f32")?;
    let compressed = positional(args, 1, "stream .fzl")?;
    let data = datasets::load_f32(Path::new(original)).map_err(|e| e.to_string())?;
    let stream = load_stream(compressed)?;
    let restored = fzlight::decompress(&stream).map_err(|e| e.to_string())?;
    if restored.len() != data.len() {
        return Err(format!("length mismatch: {} vs {}", data.len(), restored.len()));
    }
    let q = Quality::compare(&data, &restored);
    let eb = stream.eb();
    let ulp = q.max.abs().max(q.min.abs()) * f32::EPSILON as f64;
    println!(
        "max abs err {:.3e} (bound {eb:.3e}), NRMSE {:.3e}, PSNR {:.2} dB",
        q.max_abs_err, q.nrmse, q.psnr
    );
    if q.max_abs_err <= eb + ulp {
        println!("WITHIN BOUND");
        Ok(())
    } else {
        Err("ERROR BOUND VIOLATED".into())
    }
}

fn load_stream(path: &str) -> Result<CompressedStream, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    CompressedStream::from_bytes(bytes).map_err(|e| format!("{path}: {e}"))
}

/// Presence of a boolean `--flag` (no value).
fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// `hzc sim`: run one collective on the virtual cluster with the flight
/// recorder on, then print the paper-style cost breakdown, an ASCII
/// timeline, and (optionally) Prometheus-style metrics; `--trace` writes a
/// Chrome/Perfetto trace-event JSON file.
fn sim(args: &[String]) -> Result<(), String> {
    use hzccl::{CollectiveConfig, Mode, Variant};
    use netsim::{trace, Cluster, ComputeTiming, TraceConfig};

    let op = args.first().map(|s| s.as_str()).ok_or("missing collective op")?;
    if !matches!(op, "allreduce" | "reduce_scatter" | "reduce" | "bcast") {
        return Err(format!("unknown collective '{op}'"));
    }
    let rest = &args[1..];
    let ranks: usize = flag(rest, "--ranks")?.unwrap_or(8);
    if ranks == 0 {
        return Err("--ranks must be at least 1".into());
    }
    let mb: usize = flag(rest, "--mb")?.unwrap_or(4);
    let variant = match flag::<String>(rest, "--variant")?.as_deref().unwrap_or("hz") {
        "hz" => Variant::Hzccl,
        "ccoll" => Variant::CColl,
        "mpi" => Variant::Mpi,
        other => return Err(format!("unknown variant '{other}' (hz|ccoll|mpi)")),
    };
    let eb: f64 = flag(rest, "--eb")?.unwrap_or(1e-4);
    let threads: usize = flag(rest, "--threads")?.unwrap_or(1);
    let mode = if threads > 1 { Mode::MultiThread(threads) } else { Mode::SingleThread };
    let app = match flag::<String>(rest, "--app")?.as_deref().unwrap_or("sim2") {
        "sim1" => App::SimSet1,
        "sim2" => App::SimSet2,
        "nyx" => App::Nyx,
        "cesm" => App::CesmAtm,
        "hurricane" => App::Hurricane,
        other => return Err(format!("unknown app '{other}'")),
    };
    let seed: u64 = flag(rest, "--seed")?.unwrap_or(0);
    let trace_out: Option<String> = flag(rest, "--trace")?;
    let want_metrics = has_flag(rest, "--metrics");
    let width: usize = flag(rest, "--width")?.unwrap_or(100);

    // Per-rank fields: one base field, slightly rescaled per rank (same
    // compressibility profile, distinct values).
    let elems = mb * (1 << 20) / 4;
    let base = app.generate(elems, seed);
    let fields: Vec<Vec<f32>> = (0..ranks)
        .map(|r| {
            let k = 1.0 + 0.001 * r as f32;
            base.iter().map(|&v| v * k).collect()
        })
        .collect();

    let cfg = CollectiveConfig::new(eb, mode);
    let timing = ComputeTiming::Modeled(hzccl::paper_model(variant, mode));
    let cluster = Cluster::new(ranks)
        .with_net(netsim::NetConfig::default())
        .with_timing(timing)
        .with_trace(TraceConfig::default());
    let outcomes = cluster.run(|comm| {
        let data = &fields[comm.rank()];
        let cpt_threads = mode.threads();
        match (variant, op) {
            (Variant::Mpi, "allreduce") => {
                hzccl::mpi::allreduce(comm, data, cpt_threads);
            }
            (Variant::Mpi, "reduce_scatter") => {
                hzccl::mpi::reduce_scatter(comm, data, cpt_threads);
            }
            (Variant::Mpi, "reduce") => {
                hzccl::mpi::reduce(comm, data, 0, cpt_threads);
            }
            (Variant::Mpi, "bcast") => {
                let full = if comm.rank() == 0 { data.as_slice() } else { &[] };
                hzccl::mpi::bcast(comm, full, 0, data.len());
            }
            (Variant::CColl, "allreduce") => {
                hzccl::ccoll::allreduce(comm, data, &cfg).expect("ccoll allreduce");
            }
            (Variant::CColl, "reduce_scatter") => {
                hzccl::ccoll::reduce_scatter(comm, data, &cfg).expect("ccoll rs");
            }
            (Variant::CColl, "reduce") => {
                hzccl::ccoll::reduce(comm, data, 0, &cfg).expect("ccoll reduce");
            }
            (Variant::CColl, "bcast") => {
                let full = if comm.rank() == 0 { data.as_slice() } else { &[] };
                hzccl::ccoll::bcast(comm, full, 0, data.len(), &cfg).expect("ccoll bcast");
            }
            (Variant::Hzccl, "allreduce") => {
                hzccl::hz::allreduce(comm, data, &cfg).expect("hz allreduce");
            }
            (Variant::Hzccl, "reduce_scatter") => {
                hzccl::hz::reduce_scatter(comm, data, &cfg).expect("hz rs");
            }
            (Variant::Hzccl, "reduce") => {
                hzccl::hz::reduce(comm, data, 0, &cfg).expect("hz reduce");
            }
            (Variant::Hzccl, "bcast") => {
                let full = if comm.rank() == 0 { data.as_slice() } else { &[] };
                hzccl::hz::bcast(comm, full, 0, data.len(), &cfg).expect("hz bcast");
            }
            _ => unreachable!("op validated above"),
        }
    });

    // --- breakdown table ---------------------------------------------------
    let mut total = netsim::Breakdown::default();
    let mut makespan = 0f64;
    for o in &outcomes {
        total += o.breakdown;
        makespan = makespan.max(o.elapsed);
    }
    println!(
        "sim {op}: variant={variant:?} ranks={ranks} field={mb} MiB/rank eb={eb:e} mode={mode:?}"
    );
    println!("makespan: {:.6} s (slowest rank)", makespan);
    println!();
    println!("{:<10} {:>14} {:>8}", "bucket", "seconds", "share");
    let grand = total.total();
    for (name, secs) in [
        ("cpr", total.cpr),
        ("dpr", total.dpr),
        ("hpr", total.hpr),
        ("cpt", total.cpt),
        ("mpi", total.mpi),
        ("other", total.other),
    ] {
        let share = if grand > 0.0 { secs * 100.0 / grand } else { 0.0 };
        println!("{name:<10} {secs:>14.6} {share:>7.2}%");
    }
    println!("{:<10} {grand:>14.6} {:>7.2}%", "total", 100.0);

    // --- per-rank timeline --------------------------------------------------
    let mut registry = netsim::Registry::new();
    registry.record_run(&outcomes);
    let (_, traces) = trace::take_traces(outcomes);
    println!();
    println!("{}", trace::ascii_timeline(&traces, width));

    if want_metrics {
        println!(
            "{}",
            registry.render_histogram_ascii(
                "hz_step_compression_ratio",
                "per-step achieved compression ratio",
            )
        );
        println!("{}", registry.render_prometheus());
    }

    if let Some(path) = trace_out {
        std::fs::write(&path, trace::chrome_trace(&traces)).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote Chrome trace to {path} (load in Perfetto / chrome://tracing)");
    }
    Ok(())
}
