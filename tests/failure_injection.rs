//! Failure injection: corrupted and adversarial compressed streams flowing
//! through the stack must surface as clean `Err`s — never panics, hangs or
//! out-of-bounds reads.

use datasets::App;
use fzlight::{compress, CompressedStream, Config, ErrorBound};
use netsim::{ComputeTiming, SimBuilder, ThroughputModel};

fn valid_stream_bytes() -> Vec<u8> {
    let data = App::Hurricane.generate(4096, 9);
    let cfg = Config::new(ErrorBound::Abs(1e-3)).with_threads(2);
    compress(&data, &cfg).unwrap().into_bytes()
}

/// Flip every byte (one at a time, sampled) of a valid stream and verify the
/// stack never panics: parse either rejects the bytes, or decompression and
/// homomorphic ops return a clean result/error.
#[test]
fn single_byte_corruption_never_panics() {
    let bytes = valid_stream_bytes();
    let reference = CompressedStream::from_bytes(bytes.clone()).unwrap();
    // sample positions across header, offset table and body
    let step = (bytes.len() / 200).max(1);
    for at in (0..bytes.len()).step_by(step) {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut corrupted = bytes.clone();
            corrupted[at] ^= flip;
            if let Ok(stream) = CompressedStream::from_bytes(corrupted) {
                let _ = fzlight::decompress(&stream);
                let _ = fzlight::StreamStats::inspect(&stream);
                let _ = hzdyn::homomorphic_sum(&stream, &reference);
            }
        }
    }
}

/// Truncation at every sampled length must be a clean parse error.
#[test]
fn truncation_never_panics() {
    let bytes = valid_stream_bytes();
    let step = (bytes.len() / 100).max(1);
    for cut in (0..bytes.len()).step_by(step) {
        assert!(
            CompressedStream::from_bytes(bytes[..cut].to_vec()).is_err(),
            "cut at {cut} must be rejected"
        );
    }
}

/// A rank that receives garbage instead of a compressed chunk must fail its
/// collective with an error, not bring the simulation down.
#[test]
fn garbage_on_the_wire_fails_cleanly() {
    let timing = ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0));
    let cluster = SimBuilder::new(2).timing(timing);
    let outcomes = cluster
        .run(|comm| {
            if comm.rank() == 0 {
                // rank 0 maliciously sends noise instead of a stream
                comm.send(1, 7, vec![0xAB; 100]);
                Ok(())
            } else {
                let got = comm.recv(0, 7);
                CompressedStream::from_bytes(got).map(|_| ())
            }
        })
        .expect_clean()
        .outcomes;
    assert!(outcomes[0].value.is_ok());
    assert!(outcomes[1].value.is_err());
}

/// Mismatched-parameter streams must be rejected by every homomorphic entry
/// point, including the accumulator.
#[test]
fn parameter_mismatches_rejected_everywhere() {
    let data = App::Nyx.generate(2048, 0);
    let a = compress(&data, &Config::new(ErrorBound::Abs(1e-3))).unwrap();
    let b = compress(&data, &Config::new(ErrorBound::Abs(1e-4))).unwrap();
    assert!(hzdyn::homomorphic_sum(&a, &b).is_err());
    assert!(hzdyn::homomorphic_op(&a, &b, hzdyn::ReduceOp::Diff).is_err());
    assert!(hzdyn::homomorphic_axpby(&a, 1, &b, 1).is_err());
    assert!(hzdyn::homomorphic_sum_static(&a, &b).is_err());
    assert!(hzdyn::doc_reduce(&a, &b, hzdyn::ReduceOp::Sum).is_err());
    let mut acc = hzdyn::Accumulator::new(&a).unwrap();
    assert!(acc.push(&b).is_err());
}

/// ompSZp is held to the same robustness bar.
#[test]
fn ompszp_corruption_never_panics() {
    let data = App::CesmAtm.generate(4096, 2);
    let cfg = Config::new(ErrorBound::Abs(1e-3)).with_threads(2);
    let bytes = ompszp::compress(&data, &cfg).unwrap().as_bytes().to_vec();
    let step = (bytes.len() / 150).max(1);
    for at in (0..bytes.len()).step_by(step) {
        let mut corrupted = bytes.clone();
        corrupted[at] ^= 0xFF;
        if let Ok(stream) = ompszp::OszpStream::from_bytes(corrupted) {
            let _ = ompszp::decompress(&stream);
        }
    }
}

/// Parse-then-decompress one mutated codec byte string.
type Poke = fn(Vec<u8>) -> fzlight::Result<()>;

fn poke_fz(bytes: Vec<u8>) -> fzlight::Result<()> {
    let stream = CompressedStream::from_bytes(bytes)?;
    fzlight::decompress(&stream).map(|_| ())
}

/// Parse-then-decompress one mutated ompSZp byte string.
fn poke_oszp(bytes: Vec<u8>) -> fzlight::Result<()> {
    let stream = ompszp::OszpStream::from_bytes(bytes)?;
    ompszp::decompress(&stream).map(|_| ())
}

/// `decode_planes` used to read past the end of a short plane buffer (a
/// panic in the block walk); it now validates up front. Every truncated
/// prefix, across block lengths and all code lengths, must surface as a
/// typed `Truncated` error carrying the exact byte requirement — on the
/// bit-parallel fast path and the scalar reference alike.
#[test]
fn bitshuffle_truncation_fuzz_table() {
    use ompszp::bitshuffle;
    for len in [1usize, 7, 8, 31, 32, 64] {
        for c in 0..=32u8 {
            let mask = ((1u64 << c) - 1) as u32;
            let mags: Vec<u32> =
                (0..len).map(|i| (i as u32).wrapping_mul(0x9E37_79B9) & mask).collect();
            let mut planes = Vec::new();
            bitshuffle::encode_planes(&mags, c, &mut planes);
            let need = bitshuffle::planes_size(c, len);
            assert_eq!(planes.len(), need);
            let mut out = vec![0u32; len];
            for cut in 0..need {
                let err = bitshuffle::decode_planes(&planes[..cut], c, &mut out)
                    .expect_err("short plane buffer must be rejected");
                assert!(
                    matches!(err, fzlight::Error::Truncated { need: n, have } if n == need && have == cut),
                    "len={len} c={c} cut={cut}: unexpected error {err:?}"
                );
                assert!(bitshuffle::decode_planes_scalar(&planes[..cut], c, &mut out).is_err());
            }
        }
    }
}

/// Fuzz-style table over both codecs × {truncation, single-bit flip}: every
/// truncation must surface as a *typed* error (`Truncated`/`Corrupt` — the
/// variants the resilient transport reacts to with a NACK), and every
/// single-bit flip must end in a clean `Ok`/`Err` — never a panic or an
/// out-of-bounds read.
#[test]
fn codec_fuzz_table_truncation_and_bitflips() {
    let fz = valid_stream_bytes();
    let data = App::CesmAtm.generate(4096, 2);
    let ocfg = Config::new(ErrorBound::Abs(1e-3)).with_threads(2);
    let oz = ompszp::compress(&data, &ocfg).unwrap().as_bytes().to_vec();
    let table: [(&str, &[u8], Poke); 2] = [("fzlight", &fz, poke_fz), ("ompszp", &oz, poke_oszp)];
    for (name, bytes, poke) in table {
        let step = (bytes.len() / 64).max(1);
        for cut in (0..bytes.len()).step_by(step) {
            let err = poke(bytes[..cut].to_vec())
                .expect_err(&format!("{name}: truncation at {cut} must be rejected"));
            assert!(
                matches!(err, fzlight::Error::Truncated { .. } | fzlight::Error::Corrupt(_)),
                "{name}: truncation at {cut} surfaced unexpected error {err:?}"
            );
        }
        for at in (0..bytes.len()).step_by(step) {
            for bit in 0..8 {
                let mut mutated = bytes.to_vec();
                mutated[at] ^= 1 << bit;
                // any typed outcome is acceptable; panics/OOB are not
                let _ = poke(mutated);
            }
        }
    }
}
