//! Integration tests for the `hzc` command-line tool, driving the real
//! binary end to end over temp files.

use std::path::PathBuf;
use std::process::Command;

fn hzc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hzc"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hzc_cli_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn gen_compress_info_check_roundtrip() {
    let dir = tmpdir("roundtrip");
    let raw = dir.join("field.f32");
    let fzl = dir.join("field.fzl");
    let back = dir.join("back.f32");

    let out = hzc()
        .args(["gen", "hurricane", raw.to_str().unwrap(), "--mb", "1", "--seed", "7"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(std::fs::metadata(&raw).unwrap().len(), 1 << 20);

    let out = hzc()
        .args([
            "compress",
            raw.to_str().unwrap(),
            fzl.to_str().unwrap(),
            "--rel",
            "1e-3",
            "--threads",
            "2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ratio"), "{stdout}");

    let out = hzc().args(["info", fzl.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("blocks:") && stdout.contains("chunks = 2"), "{stdout}");

    let out =
        hzc().args(["decompress", fzl.to_str().unwrap(), back.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    assert_eq!(std::fs::metadata(&back).unwrap().len(), 1 << 20);

    let out = hzc().args(["check", raw.to_str().unwrap(), fzl.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("WITHIN BOUND"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sum_produces_valid_homomorphic_stream() {
    let dir = tmpdir("sum");
    let raw = dir.join("a.f32");
    let fzl = dir.join("a.fzl");
    let sum = dir.join("sum.fzl");
    assert!(hzc()
        .args(["gen", "sim2", raw.to_str().unwrap(), "--mb", "1"])
        .status()
        .unwrap()
        .success());
    assert!(hzc()
        .args(["compress", raw.to_str().unwrap(), fzl.to_str().unwrap(), "--eb", "1e-3"])
        .status()
        .unwrap()
        .success());
    let out = hzc()
        .args(["sum", fzl.to_str().unwrap(), fzl.to_str().unwrap(), sum.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("no decompression"));

    // the summed stream decompresses to ~2x the original
    let a = datasets::load_f32(&raw).unwrap();
    let s = fzlight::CompressedStream::from_bytes(std::fs::read(&sum).unwrap()).unwrap();
    let doubled = fzlight::decompress(&s).unwrap();
    for (x, y) in a.iter().zip(&doubled) {
        assert!((2.0 * x - y).abs() <= 2.0 * 1e-3 + 1e-6, "{x} vs {y}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sim_runs_a_traced_collective_end_to_end() {
    let dir = tmpdir("sim");
    let trace_path = dir.join("trace.json");
    let out = hzc()
        .args([
            "sim",
            "allreduce",
            "--ranks",
            "2",
            "--mb",
            "1",
            "--variant",
            "hz",
            "--trace",
            trace_path.to_str().unwrap(),
            "--metrics",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // breakdown table, timeline and metrics all render
    assert!(stdout.contains("makespan"), "{stdout}");
    assert!(stdout.contains("cpr"), "{stdout}");
    assert!(stdout.contains("rank   0 |"), "{stdout}");
    assert!(stdout.contains("legend:"), "{stdout}");
    assert!(stdout.contains("hz_messages_total"), "{stdout}");

    // the Chrome trace is valid JSON with one process per rank
    let text = std::fs::read_to_string(&trace_path).unwrap();
    let doc = netsim::Json::parse(&text).expect("trace file is valid JSON");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(!events.is_empty());
    let meta: Vec<_> =
        events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M")).collect();
    assert_eq!(meta.len(), 2, "one process_name entry per rank");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sim_rejects_bad_arguments() {
    let out = hzc().args(["sim", "gathermax"]).output().unwrap();
    assert!(!out.status.success());
    let out = hzc().args(["sim", "allreduce", "--variant", "nccl"]).output().unwrap();
    assert!(!out.status.success());
    let out = hzc().args(["sim", "allreduce", "--segments", "0"]).output().unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--segments"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The pipeline smoke check CI runs: a segmented hz ring must complete, echo
/// its segment count, and not be slower than the phase-serial schedule.
#[test]
fn sim_segmented_ring_is_no_slower_than_serial() {
    let makespan_of = |segments: &str| -> f64 {
        let out = hzc()
            .args([
                "sim",
                "allreduce",
                "--ranks",
                "4",
                "--mb",
                "1",
                "--variant",
                "hz",
                "--segments",
                segments,
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(&format!("segments={segments}")), "{stdout}");
        let line = stdout.lines().find(|l| l.starts_with("makespan:")).expect("makespan line");
        line.split_whitespace().nth(1).unwrap().parse::<f64>().expect("makespan parses")
    };
    let serial = makespan_of("1");
    let pipelined = makespan_of("4");
    assert!(
        pipelined <= serial * (1.0 + 1e-9),
        "pipelined {pipelined} must not exceed serial {serial}"
    );
}

#[test]
fn errors_are_reported_not_panicked() {
    // unknown command
    let out = hzc().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // missing file
    let out = hzc().args(["info", "/nonexistent/path.fzl"]).output().unwrap();
    assert!(!out.status.success());

    // conflicting flags
    let out = hzc().args(["compress", "a", "b", "--eb", "1e-3", "--rel", "1e-3"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));

    // no args at all prints usage
    let out = hzc().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn corrupt_stream_is_rejected_by_info() {
    let dir = tmpdir("corrupt");
    let bad = dir.join("bad.fzl");
    std::fs::write(&bad, b"not a stream at all").unwrap();
    let out = hzc().args(["info", bad.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sim_supports_rd_and_auto_variants() {
    // recursive-doubling variant runs an allreduce end to end
    let out = hzc()
        .args(["sim", "allreduce", "--ranks", "4", "--mb", "1", "--variant", "rd"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("makespan"));

    // …but only an allreduce: every other op must be rejected with a message
    let out = hzc()
        .args(["sim", "reduce_scatter", "--ranks", "4", "--mb", "1", "--variant", "rd"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("allreduce only"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // auto (cacheless) decides from the analytical model and explains itself
    let out = hzc()
        .args(["sim", "allreduce", "--ranks", "4", "--mb", "1", "--variant", "auto"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("auto plan:"), "{stdout}");
    assert!(stdout.contains("why:"), "{stdout}");
    assert!(stdout.contains("->"), "ranked table missing its chosen-plan marker: {stdout}");
}

#[test]
fn sim_variant_error_advertises_every_variant() {
    let out = hzc().args(["sim", "allreduce", "--variant", "nccl"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    for v in ["hz", "ccoll", "mpi", "rd", "auto"] {
        assert!(stderr.contains(v), "error message must advertise '{v}': {stderr}");
    }
}

#[test]
fn tune_writes_a_cache_that_auto_then_uses() {
    let dir = tmpdir("tune");
    let cache = dir.join("tune.json");

    // tiny offline sweep -> non-empty, parseable engine state
    let out = hzc()
        .args([
            "tune",
            "--ops",
            "allreduce",
            "--ranks",
            "4",
            "--sizes-kb",
            "64,256",
            "--out",
            cache.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&cache).unwrap();
    assert!(!text.is_empty());
    let engine = tuner::Engine::from_json(&netsim::Json::parse(&text).expect("cache parses"))
        .expect("cache loads as engine state");
    assert!(!engine.cache.is_empty(), "tune recorded no buckets");

    // the auto variant now decides from the cache for a size inside the
    // tuned bucket, and records its own measurement back into the file
    let out = hzc()
        .args([
            "sim",
            "allreduce",
            "--ranks",
            "4",
            "--kb",
            "256",
            "--variant",
            "auto",
            "--cache",
            cache.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let combined =
        format!("{}{}", String::from_utf8_lossy(&out.stdout), String::from_utf8_lossy(&out.stderr));
    assert!(out.status.success(), "{combined}");
    assert!(combined.contains("source: cache"), "{combined}");
    assert!(combined.contains("recorded"), "{combined}");

    // resuming the sweep re-parses the file it just wrote (round-trip)
    let out = hzc()
        .args([
            "tune",
            "--ops",
            "allreduce",
            "--ranks",
            "4",
            "--sizes-kb",
            "16",
            "--out",
            cache.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    std::fs::remove_dir_all(&dir).ok();
}

/// `hzc kernels --out` / `--check` round-trip: the bit-stable snapshot it
/// writes must verify against itself, and a doctored checksum must be
/// rejected with exit code 2 naming the drifted kernel.
#[test]
fn kernels_snapshot_roundtrip_and_drift_detection() {
    let dir = tmpdir("kernels");
    let snap = dir.join("BENCH_kernels.json");

    let out = hzc().args(["kernels", "--out", snap.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&snap).unwrap();
    assert!(text.contains("\"schema_version\""), "{text}");

    let out = hzc().args(["kernels", "--check", snap.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("match"), "checksum verdict missing");

    // flip one checksum nibble: --check must exit 2 and name the kernel
    let doctored = text.replacen("\"checksum\":\"0x", "\"checksum\":\"0f", 1);
    assert_ne!(doctored, text);
    std::fs::write(&snap, doctored).unwrap();
    let out = hzc().args(["kernels", "--check", snap.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stderr).contains("kernel"));
    std::fs::remove_dir_all(&dir).ok();
}
