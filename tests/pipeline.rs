//! Integration acceptance for the segmented pipelined ring (ISSUE PR 3):
//! bit-identity of every flavour/op/segment-count combination against the
//! phase-serial schedule (including the `S = 1` degenerate and the
//! clamp-to-block-count path), virtual-time improvement at the paper
//! calibration (>= 15% for the hz ring), monotone non-worseness for
//! moderate segment counts, and `Variant::Auto` choosing segmented plans
//! where the cost model predicts them.

use datasets::App;
use hzccl::collectives::{self, CollectiveOpts};
use hzccl::{paper_model, Mode, Variant};
use netsim::{ComputeTiming, NetConfig, SimBuilder, ThroughputModel};

fn modeled() -> ComputeTiming {
    ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0))
}

fn fields(nranks: usize, n: usize) -> Vec<Vec<f32>> {
    let base = App::SimSet2.generate(n, 9);
    (0..nranks).map(|r| base.iter().map(|&v| v * (1.0 + 0.001 * r as f32)).collect()).collect()
}

/// Segmentation must never change a single bit of any collective's output:
/// segment boundaries are block-aligned, so the per-block quantization (the
/// only lossy step) sees exactly the same inputs in the same order.
#[test]
fn every_variant_op_and_segment_count_is_bit_identical_to_serial() {
    let nranks = 5;
    let n = 5 * 640 + 17; // uneven chunks
    let data = fields(nranks, n);
    let cluster = SimBuilder::new(nranks).timing(modeled());
    for variant in [Variant::Mpi, Variant::CColl, Variant::Hzccl] {
        let opts_for = |segments: usize| {
            CollectiveOpts::for_variant(variant, 1e-4).with_root(1).with_segments(segments)
        };
        for op in ["allreduce", "reduce_scatter", "reduce", "bcast"] {
            let run = |segments: usize| -> Vec<Vec<f32>> {
                let opts = opts_for(segments);
                cluster
                    .run(|comm| {
                        let d = &data[comm.rank()];
                        match op {
                            "allreduce" => collectives::allreduce(comm, d, &opts),
                            "reduce_scatter" => collectives::reduce_scatter(comm, d, &opts),
                            "reduce" => collectives::reduce(comm, d, &opts),
                            _ => collectives::bcast(comm, d, &opts),
                        }
                        .unwrap_or_else(|e| panic!("{variant:?}/{op}/S={segments}: {e}"))
                    })
                    .expect_clean()
                    .values()
            };
            let reference = run(1);
            // S=2 and S=5 exercise steady-state pipelining; S=64 exceeds the
            // per-chunk block count and must clamp, not fail.
            for segments in [2usize, 5, 64] {
                assert_eq!(
                    run(segments),
                    reference,
                    "{variant:?}/{op}: S={segments} changed the result bits"
                );
            }
        }
    }
}

/// The headline acceptance: at the paper calibration, the pipelined hz ring
/// must beat the phase-serial schedule by at least 15% on a large
/// compressible Allreduce — while producing bit-identical results.
#[test]
fn pipelined_hz_ring_beats_phase_serial_by_at_least_15_percent() {
    let nranks = 8;
    let n = 1 << 19; // 2 MiB of f32 per rank
    let base = App::SimSet1.generate(n, 0);
    let data: Vec<Vec<f32>> =
        (0..nranks).map(|r| base.iter().map(|&v| v * (1.0 + 0.001 * r as f32)).collect()).collect();
    let mode = Mode::MultiThread(18);
    let timing = ComputeTiming::Modeled(paper_model(Variant::Hzccl, mode));
    let run = |segments: usize| -> (f64, Vec<f32>) {
        let opts = CollectiveOpts::hz(1e-4).with_mode(mode).with_segments(segments);
        let cluster = SimBuilder::new(nranks).net(NetConfig::default()).timing(timing);
        let report = cluster
            .run(|comm| collectives::allreduce(comm, &data[comm.rank()], &opts).expect("allreduce"))
            .expect_clean();
        (report.stats.makespan, report.values().into_iter().next().unwrap())
    };
    let (t_serial, out_serial) = run(1);
    let (t_pipe, out_pipe) = run(4);
    assert_eq!(out_pipe, out_serial, "pipelining must not change the bits");
    assert!(
        t_pipe <= t_serial * 0.85,
        "pipelined hz ring must win >= 15%: serial {:.3} ms vs pipelined {:.3} ms ({:.1}%)",
        t_serial * 1e3,
        t_pipe * 1e3,
        (1.0 - t_pipe / t_serial) * 100.0
    );
}

/// Moderate segment counts degrade gracefully: each extra segment pays one
/// more per-message alpha per ring step, so S in {2, 4} may cost a few
/// percent in the worst case but never blows up — and some moderate S must
/// strictly win wherever compute and wire genuinely overlap.
#[test]
fn moderate_segmentation_degrades_gracefully_and_wins_somewhere() {
    let nranks = 6;
    let n = 1 << 16;
    let data = fields(nranks, n);
    for variant in [Variant::CColl, Variant::Hzccl] {
        let timing = ComputeTiming::Modeled(paper_model(variant, Mode::SingleThread));
        let run = |segments: usize| -> f64 {
            let opts = CollectiveOpts::for_variant(variant, 1e-4).with_segments(segments);
            let cluster = SimBuilder::new(nranks).net(NetConfig::default()).timing(timing);
            let stats = cluster
                .run(|comm| {
                    collectives::allreduce(comm, &data[comm.rank()], &opts).expect("allreduce");
                })
                .expect_clean()
                .stats;
            stats.makespan
        };
        let t_serial = run(1);
        let mut best = f64::INFINITY;
        for segments in [2usize, 4] {
            let t = run(segments);
            best = best.min(t);
            assert!(
                t <= t_serial * 1.05,
                "{variant:?}: S={segments} ({t:.6}) materially slower than serial ({t_serial:.6})"
            );
        }
        assert!(
            best < t_serial,
            "{variant:?}: no moderate segment count improved on serial ({t_serial:.6})"
        );
    }
}

/// `Variant::Auto` must surface segmented plans: on a large compressible
/// message the paper-calibrated model predicts the pipelined hz ring wins,
/// and every rank must agree on that plan (the 12-byte broadcast carries the
/// segment word).
#[test]
fn auto_picks_a_segmented_plan_where_the_model_predicts_one() {
    let nranks = 8;
    let n = 1 << 18;
    let data = fields(nranks, n);
    let engine = tuner::Engine::paper();
    let cfg = hzccl::CollectiveConfig::new(1e-4, Mode::SingleThread);
    let timing = ComputeTiming::Modeled(paper_model(Variant::Hzccl, Mode::SingleThread));
    let cluster = SimBuilder::new(nranks).net(NetConfig::default()).timing(timing);
    let outcomes = cluster
        .run(|comm| {
            hzccl::auto::allreduce(comm, &data[comm.rank()], &cfg, &engine, None).expect("auto")
        })
        .expect_clean()
        .outcomes;
    let plan = outcomes[0].value.plan;
    assert!(
        plan.segments > 1,
        "paper model should pick a pipelined plan here, got {}",
        plan.label()
    );
    for o in &outcomes {
        assert_eq!(o.value.plan, plan, "all ranks must agree on the segmented plan");
    }
    // and the chosen plan is exactly the model's ranked winner
    let detail = outcomes[0].value.detail.as_ref().expect("rank 0 decided");
    let best =
        detail.1.ranked.iter().min_by(|a, b| a.secs.total_cmp(&b.secs)).expect("non-empty ranking");
    assert_eq!(best.plan, plan, "decision must match the ranked winner");
}

/// The unified front-end's Auto variant rides the same machinery end to end.
#[test]
fn collectives_auto_variant_runs_segmented_plans_correctly() {
    let nranks = 4;
    let n = 1 << 16;
    let data = fields(nranks, n);
    let opts = CollectiveOpts::auto(1e-4);
    let timing = ComputeTiming::Modeled(paper_model(Variant::Hzccl, Mode::SingleThread));
    let cluster = SimBuilder::new(nranks).net(NetConfig::default()).timing(timing);
    let outcomes = cluster
        .run(|comm| {
            collectives::allreduce(comm, &data[comm.rank()], &opts).expect("auto allreduce")
        })
        .expect_clean()
        .outcomes;
    let exact: Vec<f64> = (0..n).map(|i| data.iter().map(|f| f[i] as f64).sum()).collect();
    let tol = nranks as f64 * 1e-4 + 1e-6;
    for o in &outcomes {
        assert_eq!(o.value, outcomes[0].value, "all ranks agree");
    }
    for (v, e) in outcomes[0].value.iter().zip(&exact) {
        assert!(((*v as f64) - e).abs() <= tol + e.abs() * 1e-6, "{v} vs {e}");
    }
}
