//! Acceptance tests for the autotuner (ISSUE PR 2): on a paper-calibrated
//! sweep of ≥5 message sizes × {8, 64} ranks, `Variant::Auto` must land
//! within 5% of the best static flavour at *every* point (and strictly beat
//! the worst static wherever the flavours meaningfully disagree), and the
//! online calibration must demonstrably pull a mis-seeded throughput
//! constant toward the value the simulator actually exhibits.

use datasets::App;
use hzccl::collectives::{self, CollectiveOpts};
use hzccl::{auto, CollectiveConfig, Mode};
use netsim::{ComputeTiming, NetConfig, OpKind, RunReport, SimBuilder, TraceConfig};
use tuner::{Algo, Calibration, Engine, Flavor, Op, Plan, ScenarioSpec, ThreadMode};

fn rank_fields(nranks: usize, elems: usize, seed: u64) -> Vec<Vec<f32>> {
    let base = App::SimSet2.generate(elems, seed);
    (0..nranks)
        .map(|r| {
            let k = 1.0 + 0.001 * r as f32;
            base.iter().map(|&v| v * k).collect()
        })
        .collect()
}

/// Offline compression-ratio probe, as `hzc tune` does.
fn probe_ratio(base: &[f32], eb: f64) -> f64 {
    let sample = &base[..base.len().min(auto::PROBE_ELEMS)];
    let fz = fzlight::Config::new(fzlight::ErrorBound::Abs(eb));
    fzlight::compress(sample, &fz)
        .map(|s| (sample.len() * 4) as f64 / s.compressed_size().max(1) as f64)
        .unwrap_or(1.0)
        .max(1.0)
}

/// Execute one static plan on the paper-calibrated simulator; returns the
/// makespan and the run report (traced, so `observe_run` can calibrate).
fn run_static(
    nranks: usize,
    fields: &[Vec<f32>],
    plan: &Plan,
    eb: f64,
    timing: ComputeTiming,
) -> (f64, RunReport<()>) {
    let mode = match plan.mode {
        ThreadMode::St => Mode::SingleThread,
        ThreadMode::Mt(k) => Mode::MultiThread(k),
    };
    let cluster = SimBuilder::new(nranks)
        .net(NetConfig::default())
        .timing(timing)
        .trace(TraceConfig::default());
    let cluster_run = cluster.run(|comm| {
        let data = &fields[comm.rank()];
        match (plan.flavor, plan.algo) {
            (Flavor::Mpi, Algo::Rd) => {
                hzccl::rd::allreduce_rd(comm, data, mode.threads());
            }
            (Flavor::Hzccl, Algo::Rd) => {
                let cfg = CollectiveConfig { eb, block_len: plan.block_len, mode, res: None };
                hzccl::rd::allreduce_rd_hz(comm, data, &cfg).expect("hz rd");
            }
            (flavor, _) => {
                let variant = match flavor {
                    Flavor::Mpi => hzccl::Variant::Mpi,
                    Flavor::CColl => hzccl::Variant::CColl,
                    Flavor::Hzccl => hzccl::Variant::Hzccl,
                };
                let opts = CollectiveOpts::for_variant(variant, eb)
                    .with_mode(mode)
                    .with_block_len(plan.block_len)
                    .with_segments(plan.segments);
                collectives::allreduce(comm, data, &opts).expect("static plan");
            }
        }
    });
    let report = cluster_run.expect_clean();
    (report.stats.makespan, report)
}

/// The headline acceptance sweep. Two passes per (ranks, size) point: pass 1
/// measures every static candidate and feeds the tuner (what `hzc tune`
/// does); pass 2 times the *warm* auto path — one cold call pays probe +
/// plan agreement, then the clock resets and the memoized call is measured,
/// exactly how an iterative workload amortizes the decision.
#[test]
fn auto_tracks_best_static_within_5pct_across_the_sweep() {
    let eb = 1e-4;
    let cfg = CollectiveConfig::new(eb, Mode::SingleThread);
    for &nranks in &[8usize, 64] {
        let mut engine = Engine::paper();
        // ≥5 sizes straddling both analytical crossovers (~37 KB ring-vs-rd
        // across flavours, ~226 KB hz-ring vs hz-rd at N=64).
        for &kb in &[4usize, 16, 64, 256, 512] {
            let elems = (kb * 1024 / 4).max(nranks);
            let fields = rank_fields(nranks, elems, 11);
            let ratio = probe_ratio(&fields[0], eb);
            let spec = ScenarioSpec::new(Op::Allreduce, elems, nranks, eb, cfg.block_len, ratio);

            // pass 1: measure + absorb every static candidate
            let mut best = f64::INFINITY;
            let mut worst = 0f64;
            for plan in engine.candidates(&spec) {
                let timing = ComputeTiming::Modeled(engine.calib.model(plan.flavor, plan.mode));
                let (makespan, report) = run_static(nranks, &fields, &plan, eb, timing);
                engine.observe_run(&spec, &plan, &report);
                best = best.min(makespan);
                worst = worst.max(makespan);
            }
            assert!(best.is_finite() && worst > 0.0);

            // pass 2: warm auto (cold call, reset clock, measure the rerun)
            let decision = engine.decide(&spec);
            let timing = ComputeTiming::Modeled(
                engine.calib.model(decision.plan.flavor, decision.plan.mode),
            );
            let cluster = SimBuilder::new(nranks).net(NetConfig::default()).timing(timing);
            let stats = cluster
                .run(|comm| {
                    let mut session = auto::Session::new();
                    session.allreduce(comm, &fields[comm.rank()], &cfg, &engine).expect("cold");
                    comm.reset_clock();
                    session.allreduce(comm, &fields[comm.rank()], &cfg, &engine).expect("warm");
                })
                .expect_clean()
                .stats;
            let t_auto = stats.makespan;

            assert!(
                t_auto <= best * 1.05,
                "{nranks} ranks, {kb} KB: auto {:.3} ms exceeds 5% over best static {:.3} ms \
                 (picked {})",
                t_auto * 1e3,
                best * 1e3,
                decision.plan.label()
            );
            // Wherever the flavours meaningfully disagree (they always do on
            // this sweep — compressible data, crossover sizes), auto must
            // strictly dodge the worst static cost.
            if worst > best * 1.2 {
                assert!(
                    t_auto < worst,
                    "{nranks} ranks, {kb} KB: auto {:.3} ms did not beat worst {:.3} ms",
                    t_auto * 1e3,
                    worst * 1e3
                );
            }
        }
    }
}

/// The tuned plan must flip across the rd→ring crossover: recursive doubling
/// in the latency-bound small-message regime, the homomorphic ring once
/// bandwidth (and compression) dominate.
#[test]
fn auto_flips_from_rd_to_ring_across_the_crossover() {
    let eb = 1e-4;
    let nranks = 64;
    let engine = Engine::paper();
    let small = ScenarioSpec::new(Op::Allreduce, 4 * 1024 / 4, nranks, eb, 32, 7.0);
    let large = ScenarioSpec::new(Op::Allreduce, 1 << 20, nranks, eb, 32, 7.0);
    let d_small = engine.decide(&small);
    let d_large = engine.decide(&large);
    assert_eq!(d_small.plan.algo, Algo::Rd, "small messages should pick rd: {}", d_small.why);
    assert_eq!(d_large.plan.algo, Algo::Ring, "large messages should pick ring: {}", d_large.why);
    assert_eq!(d_large.plan.flavor, Flavor::Hzccl, "compressible large data should pick hz");
}

/// Online calibration through the simulator: mis-seed the hz HPR throughput
/// at a fraction of its true value, run traced collectives whose modeled
/// timing reflects the *true* constant, and watch `observe_run` pull the
/// mis-seeded estimate monotonically toward truth.
#[test]
fn calibration_converges_from_a_mis_seeded_constant() {
    let eb = 1e-4;
    let nranks = 8;
    let elems = 64 * 1024;
    let fields = rank_fields(nranks, elems, 3);
    let truth = tuner::paper_prior(Flavor::Hzccl, false).gbps[OpKind::Hpr.index()]; // 9.7 GB/s

    let mut engine = Engine::paper();
    let key = Calibration::key(Flavor::Hzccl, false);
    engine.calib.thr.get_mut(&key).expect("hz:st table")[OpKind::Hpr.index()] = 0.5;

    let plan = Plan::serial(Flavor::Hzccl, Algo::Ring, ThreadMode::St, 32);
    let ratio = probe_ratio(&fields[0], eb);
    let spec = ScenarioSpec::new(Op::Allreduce, elems, nranks, eb, 32, ratio);
    // The simulator times kernels with the TRUE paper model — that is the
    // "measured" signal the calibration should recover.
    let true_timing = ComputeTiming::Modeled(tuner::paper_prior(Flavor::Hzccl, false));

    let mut estimates = vec![engine.calib.thr[&key][OpKind::Hpr.index()]];
    for _ in 0..6 {
        let (_, report) = run_static(nranks, &fields, &plan, eb, true_timing);
        engine.observe_run(&spec, &plan, &report);
        estimates.push(engine.calib.thr[&key][OpKind::Hpr.index()]);
    }

    // Each absorbed run moves the estimate strictly toward the truth…
    for w in estimates.windows(2) {
        assert!(
            (truth - w[1]).abs() < (truth - w[0]).abs(),
            "estimate moved away from truth: {} -> {} (truth {truth})",
            w[0],
            w[1]
        );
    }
    // …and after a handful of runs the mis-seeding is mostly repaired.
    let last = *estimates.last().unwrap();
    assert!(
        (truth - last).abs() < 0.3 * (truth - 0.5).abs(),
        "calibration did not converge: started 0.5, ended {last}, truth {truth}"
    );
    // The repaired constant changes the model the engine prices with.
    let repaired = engine.calib.model(Flavor::Hzccl, ThreadMode::St).gbps[OpKind::Hpr.index()];
    assert!((repaired - last).abs() < 1e-12);
}
