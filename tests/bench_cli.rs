//! Integration tests for `hzc bench`, driving the real binary end to end:
//! deterministic snapshots, clean self-diffs, and nonzero exit on a doctored
//! baseline.

use std::path::PathBuf;
use std::process::Command;

fn hzc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hzc"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hzc_bench_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deliberately tiny sweep so the binary-level tests stay fast: one op,
/// two variants, 4 ranks, 16 KiB, serial only, no fault case.
const TINY: [&str; 10] = [
    "bench",
    "--ops",
    "allreduce",
    "--variants",
    "mpi,hz",
    "--ranks-list",
    "4",
    "--sizes-kb",
    "16",
    "--no-fault",
];

fn tiny_args(out: &std::path::Path) -> Vec<String> {
    let mut v: Vec<String> = TINY.iter().map(|s| s.to_string()).collect();
    v.push("--segments-list".into());
    v.push("1".into());
    v.push("--out".into());
    v.push(out.to_str().unwrap().into());
    v
}

#[test]
fn bench_is_bit_deterministic_across_runs() {
    let dir = tmpdir("determinism");
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    for out in [&a, &b] {
        let res = hzc().args(tiny_args(out)).output().unwrap();
        assert!(res.status.success(), "{}", String::from_utf8_lossy(&res.stderr));
    }
    let bytes_a = std::fs::read(&a).unwrap();
    let bytes_b = std::fs::read(&b).unwrap();
    assert!(!bytes_a.is_empty());
    assert_eq!(bytes_a, bytes_b, "two runs of the same suite must be byte-identical");
}

#[test]
fn self_diff_is_clean_and_doctored_baseline_regresses() {
    let dir = tmpdir("diff");
    let base = dir.join("base.json");
    let res = hzc().args(tiny_args(&base)).output().unwrap();
    assert!(res.status.success(), "{}", String::from_utf8_lossy(&res.stderr));

    // Same suite against its own snapshot: zero regressions, exit 0.
    let rerun = dir.join("rerun.json");
    let mut args = tiny_args(&rerun);
    args.push("--against".into());
    args.push(base.to_str().unwrap().into());
    let res = hzc().args(&args).output().unwrap();
    assert!(res.status.success(), "{}", String::from_utf8_lossy(&res.stderr));
    let stdout = String::from_utf8_lossy(&res.stdout);
    assert!(stdout.contains("no regressions"), "{stdout}");

    // Shrink every baseline time by 10x: every case now "regresses" and the
    // exit code must be nonzero with the offenders listed.
    let doctored_text = std::fs::read_to_string(&base)
        .unwrap()
        .lines()
        .map(|line| match line.find("\"virtual_secs\":") {
            Some(i) if line.contains("\"id\"") => {
                let tail = &line[i + "\"virtual_secs\":".len()..];
                let end = tail.find(',').unwrap();
                let v: f64 = tail[..end].parse().unwrap();
                format!("{}\"virtual_secs\":{:e}{}", &line[..i], v / 10.0, &tail[end..])
            }
            _ => line.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n");
    let doctored = dir.join("doctored.json");
    std::fs::write(&doctored, doctored_text).unwrap();

    let rerun2 = dir.join("rerun2.json");
    let mut args = tiny_args(&rerun2);
    args.push("--against".into());
    args.push(doctored.to_str().unwrap().into());
    let res = hzc().args(&args).output().unwrap();
    assert!(!res.status.success(), "a 10x slowdown vs baseline must fail the check");
    assert_eq!(res.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&res.stdout);
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains("regression(s)"), "{stdout}");
}

#[test]
fn bench_refuses_future_schema_baselines() {
    let dir = tmpdir("schema");
    let base = dir.join("base.json");
    let res = hzc().args(tiny_args(&base)).output().unwrap();
    assert!(res.status.success(), "{}", String::from_utf8_lossy(&res.stderr));
    let future = std::fs::read_to_string(&base)
        .unwrap()
        .replace("\"schema_version\":1,", "\"schema_version\":999,");
    let future_path = dir.join("future.json");
    std::fs::write(&future_path, future).unwrap();

    let rerun = dir.join("rerun.json");
    let mut args = tiny_args(&rerun);
    args.push("--against".into());
    args.push(future_path.to_str().unwrap().into());
    let res = hzc().args(&args).output().unwrap();
    assert!(!res.status.success(), "an unknown baseline schema must be refused");
    let stderr = String::from_utf8_lossy(&res.stderr);
    assert!(stderr.contains("schema"), "{stderr}");
}

#[test]
fn sim_critical_path_reports_a_tiled_path() {
    let out = hzc()
        .args([
            "sim",
            "allreduce",
            "--variant",
            "hz",
            "--ranks",
            "4",
            "--kb",
            "64",
            "--critical-path",
            "--slack",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("critical path"), "{stdout}");
    assert!(stdout.contains("residual"), "{stdout}");
    assert!(stdout.contains("path bucket"), "{stdout}");
    assert!(stdout.contains("slack"), "{stdout}");
}
