//! Chaos-layer properties: deterministic fault replay, recorder invariants
//! under retransmission, soak coverage of every collective flavour under
//! drop + corruption, forced degradation, and crash propagation.

use hzccl::collectives::{allreduce, reduce_scatter, CollectiveOpts};
use hzccl::{Mode, Resilience, Variant};
use netsim::{
    ComputeTiming, FaultPlan, LinkFault, Registry, SimBuilder, ThroughputModel, TraceConfig,
};

fn modeled() -> ComputeTiming {
    ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0))
}

fn field(rank: usize, n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i as f32) * 0.013).sin() * (1.0 + 0.001 * rank as f32)).collect()
}

fn opts_for(variant: Variant, eb: f64) -> CollectiveOpts {
    CollectiveOpts::for_variant(variant, eb).with_mode(Mode::SingleThread)
}

/// Same-seed fault plans replay bit-identically: two runs of the same
/// collective under the same `FaultPlan` produce byte-for-byte equal results
/// *and* bit-identical virtual-time traces (every event, timestamp included).
#[test]
fn same_seed_fault_plan_replays_bit_identically() {
    let n = 4096;
    let nranks = 6;
    let plan = FaultPlan::new(42).with_drop(0.05).with_corrupt(0.02).with_jitter(2e-6);
    let run = || {
        SimBuilder::new(nranks)
            .timing(modeled())
            .trace(TraceConfig::default())
            .faults(plan.clone())
            .run(|comm| {
                let data = field(comm.rank(), n);
                let opts = opts_for(Variant::Hzccl, 1e-4).with_resilience(Resilience::default());
                allreduce(comm, &data, &opts).expect("resilient allreduce")
            })
            .expect_clean()
    };
    let (a, b) = (run(), run());
    for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(oa.value, ob.value, "rank {} values differ across replays", oa.rank);
        assert_eq!(oa.elapsed, ob.elapsed, "virtual makespan differs across replays");
    }
    assert_eq!(a.traces, b.traces, "virtual-time traces differ across replays");
}

/// Recorder invariant: retransmitted frames are real wire traffic but not
/// logical payload — under drops the wire-byte total grows while the
/// logical-byte total stays exactly what the fault-free resilient run
/// reported.
#[test]
fn retransmits_count_as_wire_bytes_not_logical_bytes() {
    let n = 4096;
    let nranks = 4;
    let run = |plan: Option<FaultPlan>| {
        let mut cluster = SimBuilder::new(nranks).timing(modeled()).trace(TraceConfig::default());
        if let Some(p) = plan {
            cluster = cluster.faults(p);
        }
        let report = cluster
            .run(|comm| {
                let data = field(comm.rank(), n);
                let opts = opts_for(Variant::Hzccl, 1e-4).with_resilience(Resilience::default());
                allreduce(comm, &data, &opts).expect("resilient allreduce")
            })
            .expect_clean();
        let mut reg = Registry::new();
        reg.record_report(&report);
        reg
    };
    let clean = run(None);
    let faulty = run(Some(FaultPlan::new(9).with_drop(0.08)));
    let retrans = faulty.counter("hz_retransmits_total").unwrap_or(0);
    assert!(retrans > 0, "8% drop at 4 ranks must force at least one retransmit");
    assert_eq!(
        faulty.counter("hz_logical_bytes_total"),
        clean.counter("hz_logical_bytes_total"),
        "retransmits must not inflate the logical-byte total"
    );
    assert!(
        faulty.counter("hz_wire_bytes_total").unwrap()
            > clean.counter("hz_wire_bytes_total").unwrap(),
        "retransmitted frames must appear in the wire-byte total"
    );
}

/// Soak: {1%, 5%} drop plus corruption across all three flavours and both
/// reduction collectives. Every run completes; `mpi` matches its fault-free
/// baseline bit-for-bit (raw floats retransmit verbatim), the compressed
/// flavours stay within the error budget; the sweep as a whole observes
/// nonzero retransmits and reports the degraded-segment counter.
#[test]
fn soak_drop_and_corruption_across_flavours() {
    let n = 4096;
    let nranks = 8;
    let eb = 1e-4;
    let mut total_retrans = 0u64;
    for drop in [0.01, 0.05] {
        for variant in [Variant::Mpi, Variant::CColl, Variant::Hzccl] {
            for op in ["allreduce", "reduce_scatter"] {
                let opts = opts_for(variant, eb);
                let run_one = |cluster: &SimBuilder, opts: &CollectiveOpts| {
                    cluster
                        .run(|comm| {
                            let data = field(comm.rank(), n);
                            match op {
                                "allreduce" => allreduce(comm, &data, opts).expect("allreduce"),
                                _ => reduce_scatter(comm, &data, opts).expect("reduce_scatter"),
                            }
                        })
                        .expect_clean()
                };
                let baseline = run_one(&SimBuilder::new(nranks).timing(modeled()), &opts);
                let plan = FaultPlan::new(7).with_drop(drop).with_corrupt(0.01);
                let cluster = SimBuilder::new(nranks)
                    .timing(modeled())
                    .trace(TraceConfig::default())
                    .faults(plan);
                let faulty =
                    run_one(&cluster, &opts.clone().with_resilience(Resilience::default()));
                let tol = match variant {
                    Variant::Mpi => 0.0,
                    _ => (2.0 * nranks as f64 + 2.0) * eb,
                };
                for (b, f) in baseline.outcomes.iter().zip(&faulty.outcomes) {
                    assert_eq!(b.value.len(), f.value.len());
                    for (x, y) in b.value.iter().zip(&f.value) {
                        assert!(
                            ((x - y).abs() as f64) <= tol,
                            "{op}/{variant:?} drop={drop}: {x} vs {y} (tol {tol:e})"
                        );
                    }
                }
                let mut reg = Registry::new();
                reg.record_report(&faulty);
                total_retrans += reg.counter("hz_retransmits_total").unwrap_or(0);
                // the counter must exist (reported), even when zero
                let _degraded = reg.counter("hz_degraded_segments_total").unwrap_or(0);
            }
        }
    }
    assert!(total_retrans > 0, "the sweep must observe at least one retransmit");
}

/// A link that drops everything forces graceful degradation: after
/// `max_retries` the sender falls back to an uncompressed reliable resend,
/// the collective still completes within the (loosened) error budget, and
/// `hz_degraded_segments_total` is nonzero.
#[test]
fn dead_link_degrades_gracefully_instead_of_aborting() {
    let n = 2048;
    let nranks = 4;
    let eb = 1e-4;
    for variant in [Variant::Mpi, Variant::CColl, Variant::Hzccl] {
        let opts = opts_for(variant, eb);
        let run_one = |cluster: &SimBuilder, opts: &CollectiveOpts| {
            cluster
                .run(|comm| {
                    let data = field(comm.rank(), n);
                    allreduce(comm, &data, opts).expect("allreduce")
                })
                .expect_clean()
        };
        let baseline = run_one(&SimBuilder::new(nranks).timing(modeled()), &opts);
        let dead = LinkFault { drop_p: 1.0, corrupt_p: 0.0, jitter_s: 0.0 };
        let plan = FaultPlan::new(3).with_link(0, 1, dead);
        let cluster =
            SimBuilder::new(nranks).timing(modeled()).trace(TraceConfig::default()).faults(plan);
        let faulty = run_one(&cluster, &opts.clone().with_resilience(Resilience::default()));
        let mut reg = Registry::new();
        reg.record_report(&faulty);
        assert!(
            reg.counter("hz_degraded_segments_total").unwrap_or(0) > 0,
            "{variant:?}: a 100%-loss link must exhaust retries and degrade"
        );
        // every degraded hop may re-quantize once on the compressed flavours
        let tol = match variant {
            Variant::Mpi => 0.0,
            _ => (2.0 * nranks as f64 + 2.0) * eb,
        };
        for (b, f) in baseline.outcomes.iter().zip(&faulty.outcomes) {
            for (x, y) in b.value.iter().zip(&f.value) {
                assert!(
                    ((x - y).abs() as f64) <= tol,
                    "{variant:?}: degraded result {y} strayed from {x} (tol {tol:e})"
                );
            }
        }
    }
}

/// An injected crash takes down its rank with a named panic and cascades to
/// the peers blocked on it; the report records every fate as a value.
#[test]
fn injected_crash_propagates_with_named_payloads() {
    let n = 2048;
    let nranks = 4;
    let plan = FaultPlan::new(1).with_crash(2, 1);
    let report = SimBuilder::new(nranks).timing(modeled()).faults(plan).run(|comm| {
        let data = field(comm.rank(), n);
        let opts = opts_for(Variant::Mpi, 1e-4);
        allreduce(comm, &data, &opts).expect("allreduce")
    });
    let crashed = report.panic_of(2).expect("rank 2 must die");
    assert_eq!(crashed.rank, 2);
    assert!(
        crashed.message.contains("crashed by fault plan"),
        "unexpected crash payload: {}",
        crashed.message
    );
    for (r, fate) in report.fates().iter().enumerate() {
        if r == 2 {
            continue;
        }
        // cascades re-broadcast: a peer may name the original crash or a
        // secondary casualty, but never an unrelated panic
        if let Err(p) = fate {
            assert!(
                p.message.contains("observed crash of rank"),
                "rank {r} died for the wrong reason: {}",
                p.message
            );
        }
    }
}

/// The chaos determinism contract extends to recovery: two runs of a
/// Shrink-policy recoverable collective under the same seeded crash plan
/// replay bit-identically — same survivor values, same committed epoch,
/// and bit-identical virtual-time traces (abort ripple, agreement gossip
/// and the repaired attempt included).
#[test]
fn same_seed_crash_recovery_replays_bit_identically() {
    use hzccl::collectives::{allreduce_recoverable, RecoveryPolicy};
    let n = 4096;
    let nranks = 8;
    let plan = FaultPlan::new(29).with_crash(3, 2).with_crash(6, 4);
    let run = || {
        SimBuilder::new(nranks)
            .timing(modeled())
            .trace(TraceConfig::default())
            .faults(plan.clone())
            .run(|comm| {
                let data = field(comm.rank(), n);
                let opts = opts_for(Variant::Hzccl, 1e-4).with_recovery(RecoveryPolicy::Shrink);
                allreduce_recoverable(comm, &data, &opts).expect("recoverable allreduce")
            })
    };
    let (a, b) = (run(), run());
    for r in (0..nranks).filter(|&r| r != 3 && r != 6) {
        assert_eq!(a.value(r), b.value(r), "rank {r}: recovery diverged across replays");
    }
    assert_eq!(a.traces, b.traces, "recovery traces differ across replays");
}
