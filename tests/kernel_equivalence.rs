//! Differential property tests for the bit-parallel kernel overhaul: every
//! fast kernel (bitshuffle planes, block quantization, block codec, tiled
//! homomorphic sum) must be **bit-identical** to its retained scalar
//! reference across block lengths, code lengths and adversarial inputs.
//!
//! Lengths sweep {1, 7, 8, 63, 64, 65, 4096} — one element, a partial
//! 8-group, an exact group, both sides of the 64-element block boundary and a
//! multi-block slice — and code lengths sweep the full 0..=32 range so every
//! const-generic specialization (residual widths 1..=7, byte planes, the
//! transpose path) is exercised, not just the codes paper-like data happens
//! to produce.

use fzlight::config::MAX_BLOCK_LEN;
use fzlight::{codec, compress, decompress, quantize, Config, ErrorBound};
use ompszp::bitshuffle;

/// Deterministic xorshift64* PRNG — the workspace's zero-dependency test
/// generator (same idiom as `tests/properties.rs`).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Slice lengths exercised by every kernel (block-level kernels clamp to the
/// 64-element codec maximum).
const LENS: [usize; 7] = [1, 7, 8, 63, 64, 65, 4096];

/// Magnitudes that need exactly `bits` planes: random below the top bit, and
/// (when the slice allows) one element pinned at the maximum so the sweep
/// covers the saturated case too.
fn mags_for_bits(rng: &mut Rng, len: usize, bits: u8) -> Vec<u32> {
    let mask = if bits == 0 { 0 } else { (1u64 << bits) - 1 } as u32;
    let mut mags: Vec<u32> = (0..len).map(|_| rng.next_u64() as u32 & mask).collect();
    if bits > 0 {
        let at = rng.next_u64() as usize % len;
        mags[at] = mask;
    }
    mags
}

/// Signed deltas whose magnitudes fit `bits`, sign-heavy (every element gets
/// an independent random sign, so sign planes are dense).
fn deltas_for_bits(rng: &mut Rng, len: usize, bits: u8) -> Vec<i64> {
    mags_for_bits(rng, len, bits)
        .into_iter()
        .map(|m| if rng.next_u64() & 1 == 1 { -(m as i64) } else { m as i64 })
        .collect()
}

#[test]
fn bitshuffle_encode_matches_scalar() {
    let mut rng = Rng::new(0xB17_5F0F);
    for &len in &LENS {
        for bits in 0u8..=32 {
            let mags = mags_for_bits(&mut rng, len, bits);
            let mut fast = Vec::new();
            let mut slow = Vec::new();
            bitshuffle::encode_planes(&mags, bits, &mut fast);
            bitshuffle::encode_planes_scalar(&mags, bits, &mut slow);
            assert_eq!(fast, slow, "len={len} c={bits}");
            assert_eq!(fast.len(), bitshuffle::planes_size(bits, len));
        }
    }
}

#[test]
fn bitshuffle_decode_matches_scalar() {
    let mut rng = Rng::new(0xDEC0DE);
    for &len in &LENS {
        for bits in 0u8..=32 {
            let mags = mags_for_bits(&mut rng, len, bits);
            let mut planes = Vec::new();
            bitshuffle::encode_planes(&mags, bits, &mut planes);
            // prefill with a sentinel so overwrite/fill behavior is compared
            // too, not just the decoded bits
            let mut fast = vec![0xFFFF_FFFFu32; len];
            let mut slow = vec![0xFFFF_FFFFu32; len];
            let nf = bitshuffle::decode_planes(&planes, bits, &mut fast).unwrap();
            let ns = bitshuffle::decode_planes_scalar(&planes, bits, &mut slow).unwrap();
            assert_eq!(nf, ns, "len={len} c={bits}");
            assert_eq!(fast, slow, "len={len} c={bits}");
            assert_eq!(fast, mags, "len={len} c={bits} roundtrip");
        }
    }
}

#[test]
fn codec_encode_matches_scalar() {
    let mut rng = Rng::new(0xE2C0DE);
    for &len in &LENS {
        let len = len.min(MAX_BLOCK_LEN);
        for bits in 0u8..=32 {
            let deltas = deltas_for_bits(&mut rng, len, bits);
            let mut fast = Vec::new();
            let mut slow = Vec::new();
            let cf = codec::encode_deltas(&deltas, &mut fast).unwrap();
            let cs = codec::encode_deltas_scalar(&deltas, &mut slow).unwrap();
            assert_eq!(cf, cs, "len={len} bits={bits}");
            assert_eq!(fast, slow, "len={len} bits={bits}");
        }
    }
}

#[test]
fn codec_decode_matches_scalar() {
    let mut rng = Rng::new(0x5EED);
    for &len in &LENS {
        let len = len.min(MAX_BLOCK_LEN);
        for bits in 0u8..=32 {
            let deltas = deltas_for_bits(&mut rng, len, bits);
            let mut enc = Vec::new();
            codec::encode_deltas(&deltas, &mut enc).unwrap();
            let mut fast = vec![i64::MIN; len];
            let mut slow = vec![i64::MIN; len];
            let nf = codec::decode_block(&enc, &mut fast).unwrap();
            let ns = codec::decode_block_scalar(&enc, &mut slow).unwrap();
            assert_eq!(nf, ns, "len={len} bits={bits}");
            assert_eq!(fast, slow, "len={len} bits={bits}");
            assert_eq!(fast, deltas, "len={len} bits={bits} roundtrip");
        }
    }
}

/// The fused decode-accumulate entry points (`decode_block_add`/`_sub`) must
/// equal decode-then-combine on every code length.
#[test]
fn codec_fused_accumulate_matches_decode_then_combine() {
    let mut rng = Rng::new(0xACC);
    for &len in &LENS {
        let len = len.min(MAX_BLOCK_LEN);
        for bits in 0u8..=32 {
            let deltas = deltas_for_bits(&mut rng, len, bits);
            let mut enc = Vec::new();
            codec::encode_deltas(&deltas, &mut enc).unwrap();
            let base: Vec<i64> =
                (0..len).map(|_| (rng.next_u64() as u32) as i64 - (1 << 31)).collect();
            let mut tmp = vec![0i64; len];
            let nref = codec::decode_block_scalar(&enc, &mut tmp).unwrap();
            let want_add: Vec<i64> = base.iter().zip(&tmp).map(|(b, d)| b + d).collect();
            let want_sub: Vec<i64> = base.iter().zip(&tmp).map(|(b, d)| b - d).collect();
            let mut acc = base.clone();
            assert_eq!(codec::decode_block_add(&enc, &mut acc).unwrap(), nref);
            assert_eq!(acc, want_add, "add len={len} bits={bits}");
            let mut acc = base.clone();
            assert_eq!(codec::decode_block_sub(&enc, &mut acc).unwrap(), nref);
            assert_eq!(acc, want_sub, "sub len={len} bits={bits}");
        }
    }
}

#[test]
fn quantize_block_matches_scalar_on_adversarial_inputs() {
    let mut rng = Rng::new(0x0_44A7);
    for &len in &LENS {
        for case in 0..6 {
            // outlier-heavy mixes: huge magnitudes, denormals, exact zeros,
            // and sprinkled non-finite values / overflow triggers
            let values: Vec<f32> = (0..len)
                .map(|_| match (rng.next_u64() % 8, case) {
                    (_, 3) => f32::NAN,
                    (0, 4) => f32::INFINITY,
                    (1, 5) => 1.0e30,
                    (0..=3, _) => ((rng.next_u64() as u32) as f32 - 2.0e9) * 1.0e-3,
                    (4..=5, _) => (rng.next_u64() as u32) as f32 * 1.0e-38,
                    _ => 0.0,
                })
                .collect();
            for inv_2eb in [1.0 / 2e-3, 1.0 / 2e-10] {
                let mut fast = vec![0i32; len];
                let mut slow = vec![0i32; len];
                let rf = quantize::quantize_block(&values, inv_2eb, 17, &mut fast);
                let rs = quantize::quantize_block_scalar(&values, inv_2eb, 17, &mut slow);
                assert_eq!(rf, rs, "len={len} case={case} inv={inv_2eb}");
                if rf.is_ok() {
                    assert_eq!(fast, slow, "len={len} case={case} inv={inv_2eb}");
                }
            }
        }
    }
}

/// Sign- and outlier-heavy field: alternating-sign large values with abrupt
/// jumps, so blocks land on high code lengths and dense sign planes.
fn spiky_field(rng: &mut Rng, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let m = (rng.next_u64() % 1000) as f32;
            let spike = if rng.next_u64().is_multiple_of(16) { 1.0e3 } else { 1.0 };
            if i.is_multiple_of(2) {
                m * spike
            } else {
                -m * spike
            }
        })
        .collect()
}

#[test]
fn homomorphic_sum_matches_scalar_reference() {
    let mut rng = Rng::new(0x50_0050);
    for &len in &LENS {
        for threads in [1usize, 3] {
            let a = spiky_field(&mut rng, len);
            let b = spiky_field(&mut rng, len);
            let cfg = Config::new(ErrorBound::Abs(1e-3)).with_threads(threads);
            let ca = compress(&a, &cfg).unwrap();
            let cb = compress(&b, &cfg).unwrap();
            let fast = hzdyn::homomorphic_sum(&ca, &cb).unwrap();
            let slow = hzdyn::reference::homomorphic_sum_scalar(&ca, &cb).unwrap();
            assert_eq!(fast.as_bytes(), slow.as_bytes(), "len={len} threads={threads}");
        }
    }
}

/// The Diff pipeline (exercising `decode_block_sub`) must produce the same
/// bytes as the independent axpby(1, -1) implementation, and decompress to
/// the quantized difference.
#[test]
fn homomorphic_diff_matches_axpby() {
    let mut rng = Rng::new(0xD1FF);
    for &len in &[63usize, 65, 4096] {
        let a = spiky_field(&mut rng, len);
        let b = spiky_field(&mut rng, len);
        let cfg = Config::new(ErrorBound::Abs(1e-3)).with_threads(2);
        let ca = compress(&a, &cfg).unwrap();
        let cb = compress(&b, &cfg).unwrap();
        let diff = hzdyn::homomorphic_op(&ca, &cb, hzdyn::ReduceOp::Diff).unwrap();
        let axpby = hzdyn::homomorphic_axpby(&ca, 1, &cb, -1).unwrap();
        assert_eq!(diff.as_bytes(), axpby.as_bytes(), "len={len}");
        let want: Vec<f32> = decompress(&ca)
            .unwrap()
            .iter()
            .zip(decompress(&cb).unwrap())
            .map(|(x, y)| x - y)
            .collect();
        let got = decompress(&diff).unwrap();
        for i in 0..len {
            assert!((got[i] - want[i]).abs() <= 2.1e-3, "len={len} at {i}");
        }
    }
}
