//! Flight-recorder invariants across every collective pipeline: the traced
//! event stream must reconcile exactly with the live breakdown accounting,
//! event times must be monotone, and the exporters must round-trip.

use hzccl::collectives::{self, CollectiveOpts};
use hzccl::{CollectiveConfig, Mode};
use netsim::{trace, ComputeTiming, Event, Json, OpKind, SimBuilder, ThroughputModel, TraceConfig};

fn modeled() -> ComputeTiming {
    ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0))
}

fn field(rank: usize, n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i as f32) * 0.017).sin() * (rank + 1) as f32 * 1.3).collect()
}

/// Run `f` on a traced cluster and assert, for every rank, that
/// (a) the trace-reconstructed breakdown matches the live breakdown in every
///     bucket to 1e-9,
/// (b) event start times are non-decreasing,
/// (c) the sum of recv waits equals the `mpi` bucket, and
/// (d) no event extends past the rank's final clock.
fn assert_trace_reconciles<F>(nranks: usize, what: &str, f: F) -> Vec<trace::RankTrace>
where
    F: Fn(&mut netsim::Comm) + Sync,
{
    let cluster = SimBuilder::new(nranks).timing(modeled()).trace(TraceConfig::default());
    let report = cluster.run(|comm| f(comm)).expect_clean();
    assert_eq!(report.traces.len(), nranks, "{what}: tracing was enabled for every rank");
    for (o, t) in report.outcomes.iter().zip(&report.traces) {
        let rank = t.rank;
        let live = o.breakdown;
        let rec = t.reconstructed_breakdown();
        for (bucket, a, b) in [
            ("cpr", live.cpr, rec.cpr),
            ("dpr", live.dpr, rec.dpr),
            ("hpr", live.hpr, rec.hpr),
            ("cpt", live.cpt, rec.cpt),
            ("other", live.other, rec.other),
            ("mpi", live.mpi, rec.mpi),
        ] {
            assert!(
                (a - b).abs() <= 1e-9,
                "{what} rank {rank}: {bucket} live {a} vs reconstructed {b}"
            );
        }
        let mut prev = 0.0f64;
        for ev in &t.events {
            assert!(
                ev.start() >= prev - 1e-12,
                "{what} rank {rank}: event starts went backwards ({} < {prev})",
                ev.start()
            );
            prev = prev.max(ev.start());
        }
        assert!(
            (t.wait_seconds() - live.mpi).abs() <= 1e-9,
            "{what} rank {rank}: wait sum {} vs mpi {}",
            t.wait_seconds(),
            live.mpi
        );
        assert!(
            t.end_time() <= o.elapsed + 1e-12,
            "{what} rank {rank}: event past the final clock"
        );
    }
    report.traces
}

#[test]
fn mpi_allreduce_trace_reconciles() {
    let opts = CollectiveOpts::mpi();
    assert_trace_reconciles(5, "mpi", |comm| {
        let data = field(comm.rank(), 1200);
        collectives::allreduce(comm, &data, &opts).expect("mpi");
    });
}

#[test]
fn ccoll_allreduce_trace_reconciles() {
    let opts = CollectiveOpts::ccoll(1e-4);
    assert_trace_reconciles(4, "ccoll", |comm| {
        let data = field(comm.rank(), 1500);
        collectives::allreduce(comm, &data, &opts).expect("ccoll");
    });
}

#[test]
fn hz_allreduce_trace_reconciles_st_and_mt() {
    for mode in [Mode::SingleThread, Mode::MultiThread(2)] {
        let opts = CollectiveOpts::hz(1e-4).with_mode(mode);
        assert_trace_reconciles(4, "hz", |comm| {
            let data = field(comm.rank(), 2000);
            collectives::allreduce(comm, &data, &opts).expect("hz");
        });
    }
}

#[test]
fn pipelined_rings_trace_reconciles_every_flavour() {
    for (what, opts) in [
        ("mpi-pipe", CollectiveOpts::mpi().with_segments(3)),
        ("ccoll-pipe", CollectiveOpts::ccoll(1e-4).with_segments(3)),
        ("hz-pipe", CollectiveOpts::hz(1e-4).with_segments(3)),
    ] {
        assert_trace_reconciles(4, what, |comm| {
            let data = field(comm.rank(), 2400);
            collectives::allreduce(comm, &data, &opts).expect(what);
        });
    }
}

#[test]
fn rd_hz_trace_reconciles_non_power_of_two() {
    let cfg = CollectiveConfig::new(1e-4, Mode::SingleThread);
    assert_trace_reconciles(6, "rd-hz", |comm| {
        let data = field(comm.rank(), 800);
        hzccl::rd::allreduce_rd_hz(comm, &data, &cfg).expect("rd hz");
    });
}

#[test]
fn hz_reduce_and_bcast_traces_reconcile() {
    let opts = CollectiveOpts::hz(1e-3);
    assert_trace_reconciles(5, "hz-reduce", |comm| {
        let data = field(comm.rank(), 900);
        collectives::reduce(comm, &data, &opts).expect("reduce");
    });
    let base = field(7, 900);
    let bopts = opts.clone().with_root(1);
    assert_trace_reconciles(5, "hz-bcast", |comm| {
        // every rank passes a full-length buffer; non-root contents ignored
        let data = if comm.rank() == 1 { base.clone() } else { vec![0.0; 900] };
        collectives::bcast(comm, &data, &bopts).expect("bcast");
    });
}

#[test]
fn compressed_sends_carry_logical_bytes() {
    let opts = CollectiveOpts::hz(1e-4);
    let traces = assert_trace_reconciles(4, "hz-ratio", |comm| {
        let data = field(comm.rank(), 4096);
        collectives::allreduce(comm, &data, &opts).expect("hz");
    });
    let mut compressed_sends = 0usize;
    for t in &traces {
        for ev in &t.events {
            if let Event::Send { wire_bytes, logical_bytes, .. } = *ev {
                assert!(logical_bytes >= wire_bytes, "hz wire must not exceed logical");
                if logical_bytes > wire_bytes {
                    compressed_sends += 1;
                }
            }
        }
    }
    assert!(compressed_sends > 0, "hz traffic should be compressed on the wire");
}

#[test]
fn chrome_export_round_trips_every_event() {
    let opts = CollectiveOpts::hz(1e-4);
    let traces = assert_trace_reconciles(3, "chrome", |comm| {
        let data = field(comm.rank(), 600);
        collectives::allreduce(comm, &data, &opts).expect("hz");
    });
    let text = trace::chrome_trace(&traces);
    let doc = Json::parse(&text).expect("chrome trace is valid JSON");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let total_events: usize = traces.iter().map(|t| t.events.len()).sum();
    let complete: Vec<&Json> =
        events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).collect();
    assert_eq!(complete.len(), total_events, "one X entry per recorded event");
    let meta = events.len() - complete.len();
    assert_eq!(meta, traces.len(), "one process_name metadata entry per rank");
    // every complete event belongs to a valid rank and has sane timing
    for e in complete {
        let pid = e.get("pid").unwrap().as_f64().unwrap() as usize;
        assert!(pid < traces.len());
        assert!(e.get("ts").unwrap().as_f64().unwrap() >= 0.0);
        assert!(e.get("dur").unwrap().as_f64().unwrap() >= 0.0);
        assert!(e.get("args").is_some());
    }
}

#[test]
fn ascii_timeline_renders_all_ranks() {
    let opts = CollectiveOpts::hz(1e-4);
    let traces = assert_trace_reconciles(4, "ascii", |comm| {
        let data = field(comm.rank(), 3000);
        collectives::allreduce(comm, &data, &opts).expect("hz");
    });
    let art = trace::ascii_timeline(&traces, 80);
    for r in 0..4 {
        assert!(art.contains(&format!("rank {r:>3} |")), "{art}");
    }
    assert!(art.contains("legend:"), "{art}");
    assert!(art.contains('C'), "compression must be visible: {art}");
}

#[test]
fn untraced_runs_carry_no_trace() {
    let cluster = SimBuilder::new(2).timing(modeled());
    let report = cluster
        .run(|comm| {
            let data = field(comm.rank(), 256);
            collectives::allreduce(comm, &data, &CollectiveOpts::mpi()).expect("mpi");
        })
        .expect_clean();
    assert!(report.traces.is_empty(), "tracing must be off by default");
    assert!(report.trace_of(0).is_none(), "no per-rank trace without TraceConfig");
}

#[test]
fn registry_record_run_matches_trace_sums() {
    let opts = CollectiveOpts::hz(1e-4);
    let cluster = SimBuilder::new(4).timing(modeled()).trace(TraceConfig::default());
    let report = cluster
        .run(|comm| {
            let data = field(comm.rank(), 2000);
            collectives::allreduce(comm, &data, &opts).expect("hz");
        })
        .expect_clean();
    let mut reg = netsim::Registry::new();
    reg.record_report(&report);

    // messages_total equals Send events; wire bytes match
    let (mut sends, mut wire, mut cpr) = (0u64, 0u64, 0.0f64);
    for t in &report.traces {
        for ev in &t.events {
            if let Event::Send { wire_bytes, .. } = *ev {
                sends += 1;
                wire += wire_bytes as u64;
            }
        }
        cpr += t.seconds(OpKind::Cpr);
    }
    assert_eq!(reg.counter("hz_messages_total"), Some(sends));
    assert_eq!(reg.counter("hz_wire_bytes_total"), Some(wire));
    let got = reg.gauge("hz_op_seconds{kind=\"cpr\"}").unwrap();
    assert!((got - cpr).abs() <= 1e-9, "{got} vs {cpr}");
    assert!(reg.histogram("hz_step_compression_ratio").unwrap().count > 0);
    assert!(reg.gauge("hz_makespan_seconds").unwrap() > 0.0);
}

/// Golden rendering: a hand-fed registry renders byte-for-byte stably (the
/// contract `hzc sim --metrics` output and the JSON snapshots rely on).
#[test]
fn metrics_text_rendering_is_golden() {
    let mut r = netsim::Registry::new();
    r.inc("hz_messages_total", 3);
    r.inc("hz_step_calls_total{label=\"hz:compress-all\"}", 2);
    r.inc("hz_step_calls_total{label=\"hz:homomorphic-sum\"}", 4);
    r.add("hz_op_seconds{kind=\"cpr\"}", 0.5);
    r.set_max("hz_makespan_seconds", 1.25);
    r.observe("hz_message_wire_bytes", 3.0);
    r.observe("hz_message_wire_bytes", 4.0);
    r.observe("hz_message_wire_bytes", 0.0);
    let expect = "\
# TYPE hz_messages_total counter
hz_messages_total 3
# TYPE hz_step_calls_total counter
hz_step_calls_total{label=\"hz:compress-all\"} 2
hz_step_calls_total{label=\"hz:homomorphic-sum\"} 4
# TYPE hz_makespan_seconds gauge
hz_makespan_seconds 1.25
# TYPE hz_op_seconds gauge
hz_op_seconds{kind=\"cpr\"} 0.5
# TYPE hz_message_wire_bytes histogram
hz_message_wire_bytes_bucket{le=\"0\"} 1
hz_message_wire_bytes_bucket{le=\"4\"} 3
hz_message_wire_bytes_bucket{le=\"+Inf\"} 3
hz_message_wire_bytes_sum 7
hz_message_wire_bytes_count 3
hz_message_wire_bytes_p50 2.5
hz_message_wire_bytes_p99 3.9699999999999998
";
    assert_eq!(r.render_prometheus(), expect);

    let json = r.to_json().render();
    let doc = Json::parse(&json).expect("snapshot parses");
    assert_eq!(doc.get("counters").unwrap().get("hz_messages_total").unwrap().as_f64(), Some(3.0));
    assert_eq!(doc.get("gauges").unwrap().get("hz_makespan_seconds").unwrap().as_f64(), Some(1.25));
}
