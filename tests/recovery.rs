//! Crash-recovery properties of the self-healing collectives: survivor-sum
//! correctness of the Shrink policies at 8 and 64 ranks under 1–3 seeded
//! crashes, FailFast's historic cascade semantics, fault-free equivalence
//! with the plain verbs, engine-independence of recovery, and the
//! observability surface (metrics + critical-path bucket).

use hzccl::chunks::node_chunks;
use hzccl::collectives::{
    self, allreduce_recoverable, reduce_scatter_recoverable, CollectiveOpts, Error, PartialResult,
    RecoveryPolicy,
};
use hzccl::{Mode, Variant};
use netsim::{
    ComputeTiming, FaultPlan, Registry, RunReport, SimBuilder, SimEngine, ThroughputModel,
    TraceConfig,
};

const EB: f64 = 1e-4;

fn modeled() -> ComputeTiming {
    ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0))
}

fn field(rank: usize, n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i as f32) * 0.013).sin() * (1.0 + 0.001 * rank as f32)).collect()
}

fn shrink_opts(variant: Variant) -> CollectiveOpts {
    CollectiveOpts::for_variant(variant, EB)
        .with_mode(Mode::SingleThread)
        .with_recovery(RecoveryPolicy::Shrink)
}

/// The exact survivor sum in f64 (the accuracy oracle for the compressed
/// flavours).
fn survivor_sum_f64(survivors: &[usize], n: usize) -> Vec<f64> {
    let mut acc = vec![0f64; n];
    for &r in survivors {
        for (a, b) in acc.iter_mut().zip(field(r, n)) {
            *a += f64::from(b);
        }
    }
    acc
}

/// Replicate the survivable mpi ring's reduction order exactly: the
/// accumulator of segment group `g` originates at virtual rank `(g+1) % m`
/// and folds one member per hop until the owner `g` adds its own share
/// last. f32 addition is bitwise commutative, so this left fold is the
/// bit-exact expectation for the `mpi` flavour.
fn mpi_expected(survivors: &[usize], n0: usize, n: usize) -> Vec<f32> {
    let m = survivors.len();
    let ranges = node_chunks(n, n0);
    let groups = node_chunks(n0, m);
    let inputs: Vec<Vec<f32>> = (0..n0).map(|r| field(r, n)).collect();
    let mut out = vec![0f32; n];
    for (g, segs) in groups.iter().enumerate() {
        for seg in segs.clone() {
            for i in ranges[seg].clone() {
                let mut acc = inputs[survivors[(g + 1) % m]][i];
                for k in 2..=m {
                    acc += inputs[survivors[(g + k) % m]][i];
                }
                out[i] = acc;
            }
        }
    }
    out
}

fn run_shrink(
    nranks: usize,
    n: usize,
    opts: &CollectiveOpts,
    plan: FaultPlan,
    engine: SimEngine,
) -> RunReport<PartialResult> {
    SimBuilder::new(nranks)
        .timing(modeled())
        .trace(TraceConfig::default())
        .faults(plan)
        .engine(engine)
        .run(|comm| {
            let data = field(comm.rank(), n);
            allreduce_recoverable(comm, &data, opts).expect("recoverable allreduce")
        })
}

/// The acceptance matrix: Shrink allreduce at 8 and 64 ranks for all three
/// flavours under 1–3 seeded crashes. Survivors deliver the survivor sum —
/// bit-exact against the replicated reduction order for `mpi`, bitwise
/// rank-agreeing and error-bounded for the compressed flavours — and the
/// result names exactly the survivors.
#[test]
fn shrink_delivers_survivor_sums_across_scales_flavours_and_crash_counts() {
    let n = 4096;
    for nranks in [8usize, 64] {
        let crash_sets: Vec<Vec<(usize, u64)>> = vec![
            vec![(nranks / 2, 1)],
            vec![(1, 2), (nranks - 1, 4)],
            vec![(nranks / 2, 1), (2, 3), (nranks - 2, 6)],
        ];
        for crashes in crash_sets {
            let mut plan = FaultPlan::new(17);
            for &(r, s) in &crashes {
                plan = plan.with_crash(r, s);
            }
            let dead: Vec<usize> = crashes.iter().map(|&(r, _)| r).collect();
            let survivors: Vec<usize> = (0..nranks).filter(|r| !dead.contains(r)).collect();
            let m = survivors.len();
            let oracle = survivor_sum_f64(&survivors, n);
            let exact = mpi_expected(&survivors, nranks, n);
            for variant in [Variant::Mpi, Variant::CColl, Variant::Hzccl] {
                let opts = shrink_opts(variant);
                let report = run_shrink(nranks, n, &opts, plan.clone(), SimEngine::default());
                for &r in &dead {
                    let p = report.panic_of(r).expect("seeded ranks must die");
                    assert!(p.message.contains("crashed by fault plan"), "{}", p.message);
                }
                let first = report.value(survivors[0]);
                for &r in &survivors {
                    let got = report.value(r);
                    assert_eq!(
                        got.contributors, survivors,
                        "{variant:?} nranks={nranks}: contributors must name the survivors"
                    );
                    assert!(
                        got.epoch >= 1 && got.epoch as usize <= dead.len(),
                        "{variant:?}: epoch {} outside 1..={}",
                        got.epoch,
                        dead.len()
                    );
                    assert_eq!(
                        got.epoch, first.epoch,
                        "{variant:?}: survivors must commit the same epoch"
                    );
                    if variant == Variant::Mpi {
                        assert_eq!(
                            got.value, exact,
                            "{variant:?} nranks={nranks} crashes={dead:?}: \
                             mpi survivor sum must be bit-exact"
                        );
                    } else {
                        assert_eq!(
                            got.value, first.value,
                            "{variant:?}: compressed survivors must agree bitwise"
                        );
                        let tol = hzccl::error_bounds::shrink_allreduce(m, EB);
                        for (a, b) in got.value.iter().zip(&oracle) {
                            assert!(
                                (f64::from(*a) - b).abs() <= tol,
                                "{variant:?} nranks={nranks} crashes={dead:?}: \
                                 {a} vs {b} (tol {tol:e})"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// ShrinkRescale is Shrink followed by one deterministic scalar multiply:
/// `n0 / survivors`, the survivor-mean estimator. Bit-exact against the
/// Shrink run of the same crash plan.
#[test]
fn shrink_rescale_scales_the_survivor_sum_toward_the_mean() {
    let nranks = 8;
    let n = 2048;
    let plan = FaultPlan::new(5).with_crash(3, 2);
    let shrink =
        run_shrink(nranks, n, &shrink_opts(Variant::Mpi), plan.clone(), SimEngine::default());
    let rescaled = run_shrink(
        nranks,
        n,
        &CollectiveOpts::mpi().with_recovery(RecoveryPolicy::ShrinkRescale),
        plan,
        SimEngine::default(),
    );
    let scale = nranks as f32 / 7.0;
    for r in (0..nranks).filter(|&r| r != 3) {
        let s = report_value(&shrink, r);
        let x = report_value(&rescaled, r);
        assert_eq!(x.contributors, s.contributors);
        assert_eq!(x.epoch, s.epoch);
        let want: Vec<f32> = s.value.iter().map(|v| v * scale).collect();
        assert_eq!(x.value, want, "rescale must be exactly one multiply on the Shrink value");
    }
}

fn report_value(report: &RunReport<PartialResult>, rank: usize) -> &PartialResult {
    report.value(rank)
}

/// Recoverable reduce-scatter: survivors' owned regions tile the vector and
/// carry the survivor sum of exactly their segments.
#[test]
fn shrink_reduce_scatter_regions_tile_the_vector() {
    let nranks = 8;
    let n = 4096;
    let plan = FaultPlan::new(11).with_crash(5, 1);
    let survivors: Vec<usize> = (0..nranks).filter(|&r| r != 5).collect();
    let exact = mpi_expected(&survivors, nranks, n);
    let opts = CollectiveOpts::mpi().with_recovery(RecoveryPolicy::Shrink);
    let report = SimBuilder::new(nranks).timing(modeled()).faults(plan).run(|comm| {
        let data = field(comm.rank(), n);
        reduce_scatter_recoverable(comm, &data, &opts).expect("recoverable reduce_scatter")
    });
    let ranges = node_chunks(n, nranks);
    let groups = node_chunks(nranks, survivors.len());
    let mut covered = 0usize;
    for (v, &r) in survivors.iter().enumerate() {
        let got = report.value(r);
        assert_eq!(got.contributors, survivors);
        let segs = groups[v].clone();
        let lo = ranges[segs.start].start;
        let hi = ranges[segs.end - 1].end;
        assert_eq!(got.value.len(), hi - lo, "rank {r} owns exactly its segment group");
        assert_eq!(got.value, &exact[lo..hi], "rank {r}: bit-exact survivor sum of its region");
        covered += got.value.len();
    }
    assert_eq!(covered, n, "survivor regions tile the vector");
}

/// FailFast is today's semantics, verbatim: the seeded rank dies with the
/// fault plan's panic and every peer that observes the crash cascades with
/// the historic message.
#[test]
fn fail_fast_reproduces_the_historic_crash_cascade() {
    let nranks = 4;
    let n = 2048;
    let plan = FaultPlan::new(1).with_crash(2, 1);
    let opts = CollectiveOpts::mpi(); // FailFast is the default policy
    assert_eq!(opts.recovery(), RecoveryPolicy::FailFast);
    let report = SimBuilder::new(nranks).timing(modeled()).faults(plan).run(|comm| {
        let data = field(comm.rank(), n);
        allreduce_recoverable(comm, &data, &opts).expect("allreduce")
    });
    let crashed = report.panic_of(2).expect("rank 2 must die");
    assert!(crashed.message.contains("crashed by fault plan"), "{}", crashed.message);
    for (r, fate) in report.fates().iter().enumerate() {
        if r == 2 {
            continue;
        }
        let p = fate.as_ref().expect_err("fail-fast peers must cascade");
        assert!(
            p.message.contains("observed crash of rank"),
            "rank {r} died for the wrong reason: {}",
            p.message
        );
    }
}

/// Fault-free recoverable runs commit at epoch 0 with the full communicator
/// as contributors; `mpi` is bit-identical to the plain verb and the
/// compressed flavours stay inside their analytic bounds.
#[test]
fn fault_free_recoverable_runs_match_the_plain_verbs() {
    let nranks = 6;
    let n = 3000;
    for variant in [Variant::Mpi, Variant::CColl, Variant::Hzccl] {
        let plain_opts = CollectiveOpts::for_variant(variant, EB);
        let plain = SimBuilder::new(nranks)
            .timing(modeled())
            .run(|comm| {
                let data = field(comm.rank(), n);
                collectives::allreduce(comm, &data, &plain_opts).expect("plain")
            })
            .expect_clean();
        let opts = shrink_opts(variant);
        let rec = SimBuilder::new(nranks)
            .timing(modeled())
            .run(|comm| {
                let data = field(comm.rank(), n);
                allreduce_recoverable(comm, &data, &opts).expect("recoverable")
            })
            .expect_clean();
        for r in 0..nranks {
            let got = rec.value(r);
            assert_eq!(got.epoch, 0, "{variant:?}: nothing died, epoch must be 0");
            assert_eq!(got.contributors, (0..nranks).collect::<Vec<_>>());
            if variant == Variant::Mpi {
                assert_eq!(
                    &got.value,
                    plain.value(r),
                    "mpi recoverable must reproduce the plain verb bit-for-bit"
                );
            } else {
                // the survivable schedule roundtrips the owner's chunk
                // through the wire codec (for cross-rank bit-agreement), so
                // the compressed flavours may differ from the plain verb by
                // one quantization
                let tol = hzccl::error_bounds::shrink_allreduce(nranks, EB);
                for (a, b) in got.value.iter().zip(plain.value(r)) {
                    assert!(
                        (f64::from(*a) - f64::from(*b)).abs() <= tol,
                        "{variant:?}: {a} vs {b}"
                    );
                }
            }
        }
    }
}

/// The shrinking policies are a typed-error refusal everywhere they cannot
/// hold their contract: plain verbs (no contributor channel) and
/// [`Variant::Auto`] (no stable plan across memberships).
#[test]
fn unsupported_recovery_combinations_are_typed_errors() {
    let report = SimBuilder::new(2).timing(modeled()).run(|comm| {
        let data = vec![1.0f32; 64];
        let shrunk = CollectiveOpts::mpi().with_recovery(RecoveryPolicy::Shrink);
        let plain_verb = matches!(
            collectives::allreduce(comm, &data, &shrunk),
            Err(Error::RecoveryUnsupported { .. })
        );
        let auto = CollectiveOpts::auto(EB).with_recovery(RecoveryPolicy::Shrink);
        let auto_err = match allreduce_recoverable(comm, &data, &auto) {
            Err(Error::RecoveryUnsupported { variant, .. }) => variant == Variant::Auto,
            _ => false,
        };
        (plain_verb, auto_err)
    });
    for r in 0..2 {
        assert_eq!(*report.value(r), (true, true));
    }
}

/// Satellite of the determinism contract: the Events and Threads engines
/// must tell the same recovery story — identical survivor values, epochs,
/// contributors, and bit-identical traces — under the same seeded crash
/// plan.
#[test]
fn engines_agree_on_crash_recovery() {
    if !SimEngine::events_supported() {
        eprintln!("skipping: no fiber support on this target");
        return;
    }
    let nranks = 8;
    let n = 4096;
    for variant in [Variant::Mpi, Variant::Hzccl] {
        let opts = shrink_opts(variant);
        let plan = FaultPlan::new(23).with_crash(4, 2).with_crash(6, 5);
        let ev = run_shrink(nranks, n, &opts, plan.clone(), SimEngine::Events);
        let th = run_shrink(nranks, n, &opts, plan, SimEngine::Threads);
        for r in (0..nranks).filter(|&r| r != 4 && r != 6) {
            assert_eq!(
                ev.value(r),
                th.value(r),
                "{variant:?} rank {r}: engines must agree on the recovered result"
            );
        }
        assert_eq!(ev.traces, th.traces, "{variant:?}: traces must be engine-independent");
    }
}

/// Observability: a recovered run reports `hz_recoveries_total`,
/// `hz_epochs`, `hz_survivors`, and rescale work lands in the critical
/// path's `recovery` bucket.
#[test]
fn recovery_surfaces_in_metrics_and_critical_path() {
    let nranks = 8;
    let n = 4096;
    let plan = FaultPlan::new(3).with_crash(2, 1);
    let opts = CollectiveOpts::hz(EB).with_recovery(RecoveryPolicy::ShrinkRescale);
    let report = run_shrink(nranks, n, &opts, plan, SimEngine::default());
    let mut reg = Registry::new();
    reg.record_report(&report);
    assert!(
        reg.counter("hz_recoveries_total").unwrap_or(0) >= 1,
        "a crash-repaired run must count at least one recovery"
    );
    assert_eq!(reg.gauge("hz_epochs"), Some(1.0), "one repair commits at epoch 1");
    assert_eq!(reg.gauge("hz_survivors"), Some(7.0), "seven of eight ranks survive");
    let cp = netsim::CriticalPath::analyze(&report.traces, &netsim::NetConfig::default());
    assert!(
        cp.buckets.recovery > 0.0,
        "rescale compute must charge the recovery critical-path bucket"
    );
}
