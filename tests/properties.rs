//! Randomized property tests on the core invariants: error-bounded round
//! trips, homomorphic exactness, codec bijectivity and stream-format
//! robustness under arbitrary inputs.
//!
//! Uses a local deterministic xorshift generator instead of an external
//! property-testing crate so the whole workspace builds offline from the
//! standard library alone. Each property runs a fixed number of seeded
//! cases; failures print the case index and seed so they reproduce exactly.

use fzlight::{codec, compress, decompress, Config, ErrorBound};

/// Deterministic xorshift64* PRNG — good enough statistical quality for
/// generating test inputs, zero dependencies, fully reproducible.
#[derive(Clone)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform usize in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.unit() * (hi - lo) as f64) as usize
    }

    /// Uniform f64 in `[lo, hi)`.
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    /// Log-uniform f64 in `[lo, hi)` — matches how error bounds span
    /// magnitudes.
    fn log_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        (self.f64_in(lo.ln(), hi.ln())).exp()
    }

    /// Plausible scientific field: values spanning signs and magnitudes,
    /// always finite; ~3/5 large-range, ~1/5 unit-range, ~1/5 exact zeros.
    fn field(&mut self, max_len: usize) -> Vec<f32> {
        let n = self.range(0, max_len);
        (0..n)
            .map(|_| match self.next_u64() % 5 {
                0..=2 => self.f64_in(-1.0e3, 1.0e3) as f32,
                3 => self.f64_in(-1.0, 1.0) as f32,
                _ => 0.0f32,
            })
            .collect()
    }

    fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let n = self.range(0, max_len);
        (0..n).map(|_| self.next_u64() as u8).collect()
    }
}

const CASES: usize = 64;

#[test]
fn fzlight_roundtrip_respects_bound() {
    let mut rng = Rng::new(0xF21);
    for case in 0..CASES {
        let data = rng.field(2000);
        let eb = rng.log_uniform(1e-5, 1e-1);
        let cfg = Config::new(ErrorBound::Abs(eb)).with_threads(3);
        let stream = compress(&data, &cfg).unwrap();
        let out = decompress(&stream).unwrap();
        assert_eq!(out.len(), data.len(), "case {case}");
        for (a, b) in data.iter().zip(&out) {
            let tol = eb * (1.0 + 1e-9) + (b.abs() as f64) * f32::EPSILON as f64;
            assert!(((a - b).abs() as f64) <= tol, "case {case}: |{a} - {b}| > {tol} (eb {eb})");
        }
    }
}

#[test]
fn ompszp_roundtrip_respects_bound() {
    let mut rng = Rng::new(0x052);
    for case in 0..CASES {
        let data = rng.field(2000);
        let eb = rng.log_uniform(1e-5, 1e-1);
        let cfg = Config::new(ErrorBound::Abs(eb)).with_threads(2);
        let stream = ompszp::compress(&data, &cfg).unwrap();
        let out = ompszp::decompress(&stream).unwrap();
        assert_eq!(out.len(), data.len(), "case {case}");
        for (a, b) in data.iter().zip(&out) {
            let tol = eb * (1.0 + 1e-9) + (b.abs() as f64) * f32::EPSILON as f64;
            assert!(((a - b).abs() as f64) <= tol, "case {case}: |{a} - {b}| > {tol}");
        }
    }
}

/// The headline invariant: the homomorphic sum reconstructs from exactly
/// the sum of the quantization integers — no error beyond per-stream
/// quantization, bit-for-bit reproducible.
#[test]
fn homomorphic_sum_is_exact_on_integers() {
    let mut rng = Rng::new(0x407);
    for case in 0..CASES {
        let a = rng.field(1500);
        let n = a.len();
        let b: Vec<f32> = (0..n)
            .map(|_| ((rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 100.0)
            .collect();
        let eb = rng.log_uniform(1e-4, 1e-1);
        let cfg = Config::new(ErrorBound::Abs(eb)).with_threads(2);
        let ca = compress(&a, &cfg).unwrap();
        let cb = compress(&b, &cfg).unwrap();
        let hz = hzdyn::homomorphic_sum(&ca, &cb).unwrap();
        let da = decompress(&ca).unwrap();
        let db = decompress(&cb).unwrap();
        let ds = decompress(&hz).unwrap();
        let q = |v: f32| ((v as f64) / (2.0 * eb)).round() as i64;
        for i in 0..n {
            assert_eq!(q(ds[i]), q(da[i]) + q(db[i]), "case {case} at {i}");
        }
    }
}

#[test]
fn homomorphic_sum_commutes() {
    let mut rng = Rng::new(0xC03);
    for case in 0..CASES {
        let data = rng.field(1000);
        let eb = rng.log_uniform(1e-4, 1e-2);
        let shifted: Vec<f32> = data.iter().map(|v| v * 0.5 + 1.0).collect();
        let cfg = Config::new(ErrorBound::Abs(eb)).with_threads(2);
        let ca = compress(&data, &cfg).unwrap();
        let cb = compress(&shifted, &cfg).unwrap();
        let ab = hzdyn::homomorphic_sum(&ca, &cb).unwrap();
        let ba = hzdyn::homomorphic_sum(&cb, &ca).unwrap();
        assert_eq!(ab.as_bytes(), ba.as_bytes(), "case {case}");
    }
}

#[test]
fn codec_roundtrips_arbitrary_deltas() {
    let mut rng = Rng::new(0xDE1);
    for case in 0..CASES {
        let len = rng.range(1, 65);
        let deltas: Vec<i64> = (0..len)
            .map(|_| {
                let span = 2 * (u32::MAX as i64) + 1;
                (rng.next_u64() % span as u64) as i64 - u32::MAX as i64
            })
            .collect();
        let mut buf = Vec::new();
        codec::encode_deltas(&deltas, &mut buf).unwrap();
        let mut out = vec![0i64; deltas.len()];
        let used = codec::decode_block(&buf, &mut out).unwrap();
        assert_eq!(used, buf.len(), "case {case}");
        assert_eq!(out, deltas, "case {case}");
    }
}

/// Parsing arbitrary bytes must never panic — it either errors or yields
/// a stream whose decompression is also panic-free.
#[test]
fn stream_parser_is_panic_free() {
    let mut rng = Rng::new(0xABC);
    for _ in 0..4 * CASES {
        let bytes = rng.bytes(512);
        if let Ok(stream) = fzlight::CompressedStream::from_bytes(bytes) {
            let _ = decompress(&stream);
        }
    }
}

/// Same for ompSZp.
#[test]
fn oszp_parser_is_panic_free() {
    let mut rng = Rng::new(0xABD);
    for _ in 0..4 * CASES {
        let bytes = rng.bytes(512);
        if let Ok(stream) = ompszp::OszpStream::from_bytes(bytes) {
            let _ = ompszp::decompress(&stream);
        }
    }
}

/// Truncating a valid stream anywhere must error cleanly, never panic.
#[test]
fn truncated_streams_error_cleanly() {
    let mut rng = Rng::new(0x7C7);
    for case in 0..CASES {
        let seed = rng.next_u64();
        let data: Vec<f32> =
            (0..500).map(|i| ((i as f32) * 0.1 + seed as f32 * 1e-9).sin()).collect();
        let cfg = Config::new(ErrorBound::Abs(1e-3)).with_threads(2);
        let bytes = compress(&data, &cfg).unwrap().into_bytes();
        let cut = ((bytes.len() as f64) * rng.unit()) as usize;
        if cut < bytes.len() {
            assert!(
                fzlight::CompressedStream::from_bytes(bytes[..cut].to_vec()).is_err(),
                "case {case}: truncation at {cut}/{} parsed",
                bytes.len()
            );
        }
    }
}

#[test]
fn scale_distributes_over_sum() {
    let mut rng = Rng::new(0x5CA);
    for case in 0..CASES {
        let data = rng.field(800);
        let k = (rng.next_u64() % 11) as i32 - 5;
        let cfg = Config::new(ErrorBound::Abs(1e-3)).with_threads(2);
        let c = compress(&data, &cfg).unwrap();
        // k*(a+a) == (k*a) + (k*a) on the integers => byte-identical streams
        let sum = hzdyn::homomorphic_sum(&c, &c).unwrap();
        let left = hzdyn::homomorphic_scale(&sum, k);
        let scaled = hzdyn::homomorphic_scale(&c, k).unwrap();
        let right = hzdyn::homomorphic_sum(&scaled, &scaled);
        // overflow may occur on either path for extreme k; when both paths
        // succeed they must agree byte for byte
        if let (Ok(l), Ok(r)) = (left, right) {
            assert_eq!(l.as_bytes(), r.as_bytes(), "case {case} (k {k})");
        }
    }
}
