//! Property-based tests (proptest) on the core invariants:
//! error-bounded round trips, homomorphic exactness, codec bijectivity and
//! stream-format robustness under arbitrary inputs.

use fzlight::{codec, compress, decompress, Config, ErrorBound};
use proptest::prelude::*;

/// Strategy: plausible scientific values spanning signs and magnitudes,
/// always finite.
fn field(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(
        prop_oneof![
            3 => -1.0e3f32..1.0e3f32,
            1 => -1.0f32..1.0f32,
            1 => Just(0.0f32),
        ],
        0..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fzlight_roundtrip_respects_bound(data in field(2000), eb in 1e-5f64..1e-1) {
        let cfg = Config::new(ErrorBound::Abs(eb)).with_threads(3);
        let stream = compress(&data, &cfg).unwrap();
        let out = decompress(&stream).unwrap();
        prop_assert_eq!(out.len(), data.len());
        for (a, b) in data.iter().zip(&out) {
            let tol = eb * (1.0 + 1e-9) + (b.abs() as f64) * f32::EPSILON as f64;
            prop_assert!(((a - b).abs() as f64) <= tol, "|{} - {}| > {}", a, b, tol);
        }
    }

    #[test]
    fn ompszp_roundtrip_respects_bound(data in field(2000), eb in 1e-5f64..1e-1) {
        let cfg = Config::new(ErrorBound::Abs(eb)).with_threads(2);
        let stream = ompszp::compress(&data, &cfg).unwrap();
        let out = ompszp::decompress(&stream).unwrap();
        prop_assert_eq!(out.len(), data.len());
        for (a, b) in data.iter().zip(&out) {
            let tol = eb * (1.0 + 1e-9) + (b.abs() as f64) * f32::EPSILON as f64;
            prop_assert!(((a - b).abs() as f64) <= tol);
        }
    }

    /// The headline invariant: the homomorphic sum reconstructs from exactly
    /// the sum of the quantization integers — no error beyond per-stream
    /// quantization, bit-for-bit reproducible.
    #[test]
    fn homomorphic_sum_is_exact_on_integers(
        a in field(1500),
        b_seed in any::<u64>(),
        eb in 1e-4f64..1e-1,
    ) {
        let n = a.len();
        let mut state = b_seed | 1;
        let b: Vec<f32> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 100.0
            })
            .collect();
        let cfg = Config::new(ErrorBound::Abs(eb)).with_threads(2);
        let ca = compress(&a, &cfg).unwrap();
        let cb = compress(&b, &cfg).unwrap();
        let hz = hzdyn::homomorphic_sum(&ca, &cb).unwrap();
        let da = decompress(&ca).unwrap();
        let db = decompress(&cb).unwrap();
        let ds = decompress(&hz).unwrap();
        let q = |v: f32| ((v as f64) / (2.0 * eb)).round() as i64;
        for i in 0..n {
            prop_assert_eq!(q(ds[i]), q(da[i]) + q(db[i]), "at {}", i);
        }
    }

    #[test]
    fn homomorphic_sum_commutes(data in field(1000), eb in 1e-4f64..1e-2) {
        let shifted: Vec<f32> = data.iter().map(|v| v * 0.5 + 1.0).collect();
        let cfg = Config::new(ErrorBound::Abs(eb)).with_threads(2);
        let ca = compress(&data, &cfg).unwrap();
        let cb = compress(&shifted, &cfg).unwrap();
        let ab = hzdyn::homomorphic_sum(&ca, &cb).unwrap();
        let ba = hzdyn::homomorphic_sum(&cb, &ca).unwrap();
        prop_assert_eq!(ab.as_bytes(), ba.as_bytes());
    }

    #[test]
    fn codec_roundtrips_arbitrary_deltas(
        deltas in prop::collection::vec(-(u32::MAX as i64)..=(u32::MAX as i64), 1..=64)
    ) {
        let mut buf = Vec::new();
        codec::encode_deltas(&deltas, &mut buf).unwrap();
        let mut out = vec![0i64; deltas.len()];
        let used = codec::decode_block(&buf, &mut out).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(out, deltas);
    }

    /// Parsing arbitrary bytes must never panic — it either errors or yields
    /// a stream whose decompression is also panic-free.
    #[test]
    fn stream_parser_is_panic_free(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(stream) = fzlight::CompressedStream::from_bytes(bytes) {
            let _ = decompress(&stream);
        }
    }

    /// Same for ompSZp.
    #[test]
    fn oszp_parser_is_panic_free(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(stream) = ompszp::OszpStream::from_bytes(bytes) {
            let _ = ompszp::decompress(&stream);
        }
    }

    /// Truncating a valid stream anywhere must error cleanly, never panic.
    #[test]
    fn truncated_streams_error_cleanly(cut_frac in 0.0f64..1.0, seed in any::<u64>()) {
        let data: Vec<f32> = (0..500)
            .map(|i| ((i as f32) * 0.1 + seed as f32 * 1e-9).sin())
            .collect();
        let cfg = Config::new(ErrorBound::Abs(1e-3)).with_threads(2);
        let bytes = compress(&data, &cfg).unwrap().into_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(fzlight::CompressedStream::from_bytes(bytes[..cut].to_vec()).is_err());
        }
    }

    #[test]
    fn scale_distributes_over_sum(data in field(800), k in -5i32..=5) {
        let cfg = Config::new(ErrorBound::Abs(1e-3)).with_threads(2);
        let c = compress(&data, &cfg).unwrap();
        // k*(a+a) == (k*a) + (k*a) on the integers => byte-identical streams
        let sum = hzdyn::homomorphic_sum(&c, &c).unwrap();
        let left = hzdyn::homomorphic_scale(&sum, k);
        let scaled = hzdyn::homomorphic_scale(&c, k).unwrap();
        let right = hzdyn::homomorphic_sum(&scaled, &scaled);
        // overflow may occur on either path for extreme k; when both paths
        // succeed they must agree byte for byte
        if let (Ok(l), Ok(r)) = (left, right) {
            prop_assert_eq!(l.as_bytes(), r.as_bytes());
        }
    }
}
