//! Larger-scale collective integration: many ranks, uneven chunk sizes,
//! breakdown accounting, and the virtual-time orderings the paper reports.

use datasets::App;
use hzccl::collectives::{self, CollectiveOpts};
use hzccl::{Kernel, Mode};
use netsim::{ComputeTiming, SimBuilder, ThroughputModel};

fn modeled() -> ComputeTiming {
    ComputeTiming::Modeled(ThroughputModel::new(2.0, 4.0, 20.0, 10.0, 20.0))
}

fn fields(nranks: usize, n: usize) -> Vec<Vec<f32>> {
    let base = App::SimSet1.generate(n, 0);
    (0..nranks).map(|r| base.iter().map(|&v| v * (1.0 + 0.001 * r as f32)).collect()).collect()
}

#[test]
fn sixty_four_rank_allreduce_is_consistent_everywhere() {
    let nranks = 64;
    let n = 64 * 200 + 13; // uneven: last chunk bigger
    let data = fields(nranks, n);
    let opts = CollectiveOpts::hz(1e-4);
    let cluster = SimBuilder::new(nranks).timing(modeled());
    let outcomes = cluster
        .run(|comm| collectives::allreduce(comm, &data[comm.rank()], &opts).expect("allreduce"))
        .expect_clean()
        .outcomes;
    // all ranks identical, and error-bounded against the exact sum
    let exact: Vec<f64> = (0..n).map(|i| data.iter().map(|f| f[i] as f64).sum()).collect();
    let tol = nranks as f64 * 1e-4 + 1e-6;
    for o in &outcomes {
        assert_eq!(o.value, outcomes[0].value);
    }
    for (i, v) in outcomes[0].value.iter().enumerate() {
        assert!(
            ((*v as f64) - exact[i]).abs() <= tol + exact[i].abs() * 1e-6,
            "at {i}: {v} vs {}",
            exact[i]
        );
    }
}

#[test]
fn breakdown_totals_are_consistent_with_makespan() {
    let nranks = 16;
    let data = fields(nranks, 16 * 512);
    let opts = CollectiveOpts::hz(1e-4);
    let cluster = SimBuilder::new(nranks).timing(modeled());
    let outcomes = cluster
        .run(|comm| {
            collectives::allreduce(comm, &data[comm.rank()], &opts).expect("allreduce");
            (comm.elapsed(), comm.breakdown())
        })
        .expect_clean()
        .outcomes;
    for o in &outcomes {
        let (elapsed, b) = o.value;
        // every second of a rank's virtual clock is attributed to a bucket
        assert!(
            (elapsed - b.total()).abs() <= 1e-9 + elapsed * 1e-9,
            "elapsed {elapsed} vs accounted {}",
            b.total()
        );
    }
}

#[test]
fn hzccl_beats_ccoll_beats_mpi_at_scale() {
    let nranks = 32;
    let n = 1 << 17;
    let data = fields(nranks, n);
    let run = |opts: &CollectiveOpts| -> f64 {
        let cluster = SimBuilder::new(nranks).timing(modeled());
        let stats = cluster
            .run(|comm| {
                let d = &data[comm.rank()];
                collectives::allreduce(comm, d, opts).expect("allreduce");
            })
            .expect_clean()
            .stats;
        stats.makespan
    };
    let (t_mpi, t_ccoll, t_hz) = (
        run(&CollectiveOpts::mpi()),
        run(&CollectiveOpts::ccoll(1e-4)),
        run(&CollectiveOpts::hz(1e-4)),
    );
    assert!(t_hz < t_ccoll, "hz {t_hz} vs ccoll {t_ccoll}");
    assert!(t_ccoll < t_mpi, "ccoll {t_ccoll} vs mpi {t_mpi}");
}

#[test]
fn reduce_scatter_chunks_reassemble_to_the_full_sum() {
    let nranks = 9;
    let n = 1000; // 9 chunks of 111 + last 112
    let data = fields(nranks, n);
    let opts = CollectiveOpts::hz(1e-4).with_mode(Mode::MultiThread(2));
    let cluster = SimBuilder::new(nranks).timing(modeled());
    let outcomes = cluster
        .run(|comm| collectives::reduce_scatter(comm, &data[comm.rank()], &opts).expect("rs"))
        .expect_clean()
        .outcomes;
    let gathered: Vec<f32> = outcomes.iter().flat_map(|o| o.value.clone()).collect();
    assert_eq!(gathered.len(), n);
    let exact: Vec<f64> = (0..n).map(|i| data.iter().map(|f| f[i] as f64).sum()).collect();
    for (i, v) in gathered.iter().enumerate() {
        assert!(
            ((*v as f64) - exact[i]).abs() <= nranks as f64 * 1e-4 + exact[i].abs() * 1e-6,
            "at {i}"
        );
    }
}

#[test]
fn kernels_are_deterministic_in_virtual_time() {
    let nranks = 8;
    let data = fields(nranks, 1 << 14);
    let once = |kernel: Kernel| -> f64 {
        let cluster = SimBuilder::new(nranks).timing(modeled());
        let stats = cluster
            .run(|comm| {
                kernel.allreduce(comm, &data[comm.rank()], 1e-4, 2).expect("kernel");
            })
            .expect_clean()
            .stats;
        stats.makespan
    };
    for kernel in Kernel::ALL {
        assert_eq!(once(kernel), once(kernel), "{kernel} must be deterministic");
    }
}
