//! Cross-crate integration: synthetic datasets → compressors → homomorphic
//! reduction → collectives, verifying the paper's correctness claims end to
//! end.

use datasets::{App, Quality};
use fzlight::{Config, ErrorBound};
use hzccl::collectives::{self, CollectiveOpts};
use hzccl::Kernel;
use netsim::{ComputeTiming, SimBuilder, ThroughputModel};

fn q_ulp(data: &[f32]) -> f64 {
    data.iter().fold(0f32, |m, v| m.max(v.abs())) as f64
}

fn modeled() -> ComputeTiming {
    ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0))
}

#[test]
fn every_dataset_roundtrips_within_bound_on_both_compressors() {
    let n = 1 << 16;
    for app in App::ALL {
        let data = app.generate(n, 3);
        for rel in [1e-2, 1e-4] {
            let cfg = Config::new(ErrorBound::Rel(rel)).with_threads(2);
            let eb = ErrorBound::Rel(rel).resolve(&data).unwrap();

            // eb guaranteed in f64; the f32 reconstruction adds <= half an
            // ULP of the largest value
            let tol = eb * (1.0 + 1e-9) + q_ulp(&data) * f32::EPSILON as f64;

            let s = fzlight::compress(&data, &cfg).unwrap();
            let out = fzlight::decompress(&s).unwrap();
            let q = Quality::compare(&data, &out);
            assert!(q.max_abs_err <= tol, "{app} fzlight rel={rel}: {q:?}");

            let s = ompszp::compress(&data, &cfg).unwrap();
            let out = ompszp::decompress(&s).unwrap();
            let q = Quality::compare(&data, &out);
            assert!(q.max_abs_err <= tol, "{app} ompszp rel={rel}: {q:?}");
        }
    }
}

#[test]
fn homomorphic_sum_of_every_dataset_pair_is_error_bounded() {
    let n = 1 << 15;
    for app in App::ALL {
        let a = app.generate(n, 0);
        let b = app.generate(n, 1);
        let eb = ErrorBound::Rel(1e-3).resolve(&a).unwrap();
        let cfg = Config::new(ErrorBound::Abs(eb)).with_threads(2);
        let ca = fzlight::compress(&a, &cfg).unwrap();
        let cb = fzlight::compress(&b, &cfg).unwrap();
        let hz = hzdyn::homomorphic_sum(&ca, &cb).unwrap();
        let out = fzlight::decompress(&hz).unwrap();
        for i in 0..n {
            let exact = a[i] as f64 + b[i] as f64;
            assert!(
                (out[i] as f64 - exact).abs() <= 2.0 * eb + exact.abs() * 1e-6,
                "{app} at {i}: {} vs {exact}",
                out[i]
            );
        }
    }
}

#[test]
fn all_kernels_agree_with_mpi_within_n_times_eb() {
    let n = 4096;
    let nranks = 8;
    let eb = 1e-4;
    let base = App::Hurricane.generate(n, 5);
    let fields: Vec<Vec<f32>> =
        (0..nranks).map(|r| base.iter().map(|&v| v * (1.0 + 0.01 * r as f32)).collect()).collect();

    let cluster = SimBuilder::new(nranks).timing(modeled());
    let reference = cluster
        .run(|comm| Kernel::MpiOriginal.allreduce(comm, &fields[comm.rank()], eb, 2).expect("mpi"))
        .expect_clean()
        .outcomes;
    for kernel in [
        Kernel::CCollSingleThread,
        Kernel::CCollMultiThread,
        Kernel::HzcclSingleThread,
        Kernel::HzcclMultiThread,
    ] {
        let outcomes = cluster
            .run(|comm| kernel.allreduce(comm, &fields[comm.rank()], eb, 2).expect("kernel"))
            .expect_clean()
            .outcomes;
        let tol = 2.0 * nranks as f64 * eb;
        for (o, r) in outcomes.iter().zip(&reference) {
            for (a, b) in o.value.iter().zip(&r.value) {
                assert!(((a - b).abs() as f64) <= tol, "{kernel}: {a} vs {b} (tol {tol})");
            }
        }
    }
}

#[test]
fn reduce_scatter_then_allgather_equals_allreduce_for_hzccl() {
    let n = 2000;
    let nranks = 4;
    let eb = 1e-4;
    let base = App::SimSet2.generate(n, 1);
    let fields: Vec<Vec<f32>> =
        (0..nranks).map(|r| base.iter().map(|&v| v + r as f32 * 0.01).collect()).collect();
    let opts = CollectiveOpts::hz(eb);
    let cluster = SimBuilder::new(nranks).timing(modeled());
    let fused = cluster
        .run(|comm| collectives::allreduce(comm, &fields[comm.rank()], &opts).expect("fused"))
        .expect_clean()
        .outcomes;
    let staged = cluster
        .run(|comm| {
            let own = collectives::reduce_scatter(comm, &fields[comm.rank()], &opts).expect("rs");
            hzccl::mpi::allgather(comm, &own, n)
        })
        .expect_clean()
        .outcomes;
    for (f, s) in fused.iter().zip(&staged) {
        for (a, b) in f.value.iter().zip(&s.value) {
            // staged path gathers the decompressed chunks uncompressed, so
            // both reconstruct the same quantization integers
            assert!((a - b).abs() <= 1e-6, "{a} vs {b}");
        }
    }
}

#[test]
fn compressed_streams_survive_the_simulated_wire() {
    // send a real compressed stream through netsim and decompress remotely
    let data = App::Nyx.generate(10_000, 2);
    let cfg = Config::new(ErrorBound::Abs(1e-3)).with_threads(2);
    let stream = fzlight::compress(&data, &cfg).unwrap();
    let expect = fzlight::decompress(&stream).unwrap();
    let bytes = stream.into_bytes();

    let cluster = SimBuilder::new(2).timing(modeled());
    let outcomes = cluster
        .run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, bytes.clone());
                Vec::new()
            } else {
                let got = comm.recv(0, 0);
                let s = fzlight::CompressedStream::from_bytes(got).expect("parse");
                fzlight::decompress(&s).expect("remote decompress")
            }
        })
        .expect_clean()
        .outcomes;
    assert_eq!(outcomes[1].value, expect);
}

#[test]
fn costmodel_and_simulation_agree_on_the_winner() {
    // the closed-form model and the discrete simulation must pick the same
    // winner (hZCCL) for a bandwidth-bound configuration
    let n = 1 << 18;
    let nranks = 8;
    let eb = 1e-4;
    let base = App::SimSet1.generate(n, 0);
    let fields: Vec<Vec<f32>> = (0..nranks).map(|_| base.clone()).collect();

    let thr = ThroughputModel::new(2.0, 4.0, 20.0, 10.0, 20.0);
    let timing = ComputeTiming::Modeled(thr);
    let hz_opts = CollectiveOpts::hz(eb);
    let cluster = SimBuilder::new(nranks).timing(timing);

    let t_mpi = {
        let s = cluster
            .run(|comm| {
                collectives::allreduce(comm, &fields[comm.rank()], &CollectiveOpts::mpi())
                    .expect("mpi");
            })
            .expect_clean()
            .stats;
        s.makespan
    };
    let t_hz = {
        let s = cluster
            .run(|comm| {
                collectives::allreduce(comm, &fields[comm.rank()], &hz_opts).expect("hz");
            })
            .expect_clean()
            .stats;
        s.makespan
    };

    let fz_cfg = Config::new(ErrorBound::Abs(eb));
    let ratio = fzlight::compress(&base, &fz_cfg).unwrap().ratio();
    let scen = costmodel::Scenario {
        nranks,
        message_bytes: n * 4,
        ratio,
        net: netsim::NetConfig::default(),
        thr,
    };
    let m_mpi = costmodel::allreduce_mpi(&scen);
    let m_hz = costmodel::allreduce_hzccl(&scen);

    assert!(t_hz < t_mpi, "simulation: hz {t_hz} vs mpi {t_mpi}");
    assert!(m_hz < m_mpi, "model: hz {m_hz} vs mpi {m_mpi}");
    // and the model tracks the simulated MPI time within 2x
    assert!((m_mpi / t_mpi) < 2.0 && (t_mpi / m_mpi) < 2.0, "model {m_mpi} vs sim {t_mpi}");
}
