//! The event-driven scheduler must be observationally identical to the
//! thread-per-rank engine: same values, same virtual clocks, and
//! bit-identical flight-recorder traces — across every collective flavour,
//! both reduction ops, and under fault injection with the resilient
//! transport engaged. Plus the scale smoke the redesign exists for: a
//! 4096-rank allreduce that a thread-per-rank model could not schedule.

use hzccl::collectives::{self, CollectiveOpts};
use hzccl::{Mode, Resilience, Variant};
use netsim::{
    ComputeTiming, FaultPlan, RunReport, SimBuilder, SimEngine, ThroughputModel, TraceConfig,
};

fn modeled() -> ComputeTiming {
    ComputeTiming::Modeled(ThroughputModel::new(5.0, 10.0, 50.0, 20.0, 40.0))
}

fn fields(nranks: usize, n: usize) -> Vec<Vec<f32>> {
    let base = datasets::App::SimSet2.generate(n, 13);
    (0..nranks).map(|r| base.iter().map(|&v| v * (1.0 + 0.001 * r as f32)).collect()).collect()
}

fn run_with(
    engine: SimEngine,
    variant: Variant,
    op: &str,
    faults: Option<FaultPlan>,
) -> RunReport<Vec<f32>> {
    let nranks = 6;
    let data = fields(nranks, 4096);
    let mut opts = CollectiveOpts::for_variant(variant, 1e-4).with_mode(Mode::SingleThread);
    if faults.is_some() {
        opts = opts.with_resilience(Resilience::default());
    }
    let mut sim =
        SimBuilder::new(nranks).timing(modeled()).trace(TraceConfig::default()).engine(engine);
    if let Some(plan) = faults {
        sim = sim.faults(plan);
    }
    sim.run(|comm| {
        let mine = &data[comm.rank()];
        match op {
            "allreduce" => collectives::allreduce(comm, mine, &opts).expect("allreduce"),
            _ => collectives::reduce_scatter(comm, mine, &opts).expect("reduce_scatter"),
        }
    })
    .expect_clean()
}

/// The reconciliation matrix: {mpi, ccoll, hz} x {allreduce,
/// reduce_scatter} x {fault-free, faulted}. Fibers and OS threads schedule
/// ranks in completely different orders; if any rank's result, virtual
/// clock, or recorded event stream depended on that order, this test sees
/// it.
#[test]
fn engines_agree_on_every_flavour_op_and_fault_setting() {
    if !SimEngine::events_supported() {
        eprintln!("skipping: no fiber support on this target");
        return;
    }
    for variant in [Variant::Mpi, Variant::CColl, Variant::Hzccl] {
        for op in ["allreduce", "reduce_scatter"] {
            for faulted in [false, true] {
                let plan = faulted.then(|| {
                    FaultPlan::new(11).with_drop(0.03).with_corrupt(0.01).with_jitter(1e-6)
                });
                let what = format!("{variant:?}/{op}/faulted={faulted}");
                let threads = run_with(SimEngine::Threads, variant, op, plan.clone());
                let events = run_with(SimEngine::Events, variant, op, plan);
                for (t, e) in threads.outcomes.iter().zip(&events.outcomes) {
                    assert_eq!(t.value, e.value, "{what}: rank {} values differ", t.rank);
                    assert_eq!(t.elapsed, e.elapsed, "{what}: rank {} clocks differ", t.rank);
                    assert_eq!(
                        t.breakdown, e.breakdown,
                        "{what}: rank {} breakdowns differ",
                        t.rank
                    );
                }
                assert_eq!(threads.traces, events.traces, "{what}: traces differ");
                assert_eq!(
                    threads.stats.makespan, events.stats.makespan,
                    "{what}: makespans differ"
                );
            }
        }
    }
}

/// Crash fates reconcile too: the same injected crash kills the same rank
/// with the same payload on both engines, and every cascade casualty dies
/// for a crash-shaped reason. (Which casualty's notice a blocked peer sees
/// first is scheduler order, so cascade *attribution* is not compared —
/// the same contract tests/chaos.rs pins for a single engine.)
#[test]
fn engines_agree_on_crash_fates() {
    if !SimEngine::events_supported() {
        eprintln!("skipping: no fiber support on this target");
        return;
    }
    let nranks = 5;
    let data = fields(nranks, 2048);
    let run = |engine: SimEngine| {
        SimBuilder::new(nranks)
            .timing(modeled())
            .faults(FaultPlan::new(2).with_crash(3, 1))
            .engine(engine)
            .run(|comm| {
                let opts = CollectiveOpts::mpi();
                collectives::allreduce(comm, &data[comm.rank()], &opts).expect("allreduce")
            })
    };
    let threads = run(SimEngine::Threads);
    let events = run(SimEngine::Events);
    for report in [&threads, &events] {
        let crashed = report.panic_of(3).expect("rank 3 must die on both engines");
        assert!(
            crashed.message.contains("crashed by fault plan"),
            "unexpected crash payload: {}",
            crashed.message
        );
        for p in &report.panics {
            if p.rank == 3 {
                continue;
            }
            assert!(
                p.message.contains("observed crash of rank"),
                "rank {} died for the wrong reason: {}",
                p.rank,
                p.message
            );
        }
    }
    assert_eq!(
        threads.panic_of(3).unwrap().message,
        events.panic_of(3).unwrap().message,
        "the primary crash payload is deterministic"
    );
    for (t, e) in threads.outcomes.iter().zip(&events.outcomes) {
        assert_eq!(t.rank, e.rank, "surviving-rank sets differ");
        assert_eq!(t.value, e.value, "survivor {} computed different values", t.rank);
    }
}

/// The scale smoke: 4096 cooperatively-scheduled ranks run a ring
/// allreduce to completion. A thread-per-rank engine would need 4096 OS
/// threads; the event engine runs them on one. Debug builds exercise the
/// same path at a size the unoptimized build can turn around quickly.
#[test]
fn thousands_of_ranks_complete_on_one_os_thread() {
    if !SimEngine::events_supported() {
        eprintln!("skipping: no fiber support on this target");
        return;
    }
    let nranks = if cfg!(debug_assertions) { 512 } else { 4096 };
    let budget_s = 60.0;
    let data = fields(nranks, nranks); // one element per rank chunk
    let t0 = std::time::Instant::now();
    let report = SimBuilder::new(nranks)
        .timing(modeled())
        .engine(SimEngine::Events)
        .stack_bytes(256 * 1024)
        .run(|comm| {
            let opts = CollectiveOpts::hz(1e-4);
            collectives::allreduce(comm, &data[comm.rank()], &opts).expect("hz allreduce")
        })
        .expect_clean();
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(report.outcomes.len(), nranks);
    let first = &report.outcomes[0].value;
    for o in &report.outcomes {
        assert_eq!(&o.value, first, "rank {} disagrees at scale", o.rank);
    }
    assert!(report.stats.makespan > 0.0);
    assert!(
        wall < budget_s,
        "{nranks}-rank allreduce took {wall:.1}s wall-clock (budget {budget_s}s)"
    );
}
