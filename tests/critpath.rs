//! Golden tests for the causal critical-path analyzer: the reconstructed
//! path must tile the end-to-end virtual time on **every** collective
//! flavour and schedule, and on the serial MPI ring its communication
//! composition must reproduce the α–β closed form the cost model uses
//! (`2(N-1)` hops of `α` + chunk serialization for an Allreduce).

use hzccl::collectives::{self, CollectiveOpts};
use hzccl::{Mode, Resilience, Variant};
use netsim::{
    ComputeTiming, CriticalPath, FaultPlan, NetConfig, RankTrace, SimBuilder, TraceConfig,
};

fn fields(nranks: usize, elems: usize) -> Vec<Vec<f32>> {
    let base = datasets::App::SimSet2.generate(elems, 0);
    (0..nranks)
        .map(|r| {
            let k = 1.0 + 0.001 * r as f32;
            base.iter().map(|&v| v * k).collect()
        })
        .collect()
}

fn paper_timing(variant: Variant) -> ComputeTiming {
    ComputeTiming::Modeled(hzccl::paper_model(variant, Mode::SingleThread))
}

/// Run one collective with the flight recorder on; return `(makespan,
/// traces)`.
fn run_traced(
    op: &str,
    opts: &CollectiveOpts,
    nranks: usize,
    elems: usize,
    faults: Option<FaultPlan>,
) -> (f64, Vec<RankTrace>) {
    let data = fields(nranks, elems);
    let mut cluster = SimBuilder::new(nranks)
        .net(NetConfig::default())
        .timing(paper_timing(opts.variant()))
        .trace(TraceConfig::default());
    if let Some(plan) = faults {
        cluster = cluster.faults(plan);
    }
    let report = cluster
        .run(|comm| {
            let mine = &data[comm.rank()];
            match op {
                "allreduce" => {
                    collectives::allreduce(comm, mine, opts).expect("allreduce");
                }
                "reduce_scatter" => {
                    collectives::reduce_scatter(comm, mine, opts).expect("reduce_scatter");
                }
                other => panic!("unknown op {other}"),
            }
        })
        .expect_clean();
    (report.stats.makespan, report.traces)
}

fn assert_tiles(cp: &CriticalPath, makespan: f64, what: &str) {
    let rel = (cp.length - makespan).abs() / makespan.max(f64::MIN_POSITIVE);
    assert!(rel <= 1e-9, "{what}: path {} vs makespan {makespan} (rel {rel:e})", cp.length);
    let sum = cp.buckets.total();
    assert!(
        (sum - cp.length).abs() <= 1e-9 * cp.length.max(1e-12),
        "{what}: buckets {sum} vs length {}",
        cp.length
    );
    let per_rank: f64 = cp.per_rank.iter().sum();
    assert!(
        (per_rank - cp.length).abs() <= 1e-9 * cp.length.max(1e-12),
        "{what}: per-rank sum {per_rank} vs length {}",
        cp.length
    );
    // the path is chronological and gapless
    for w in cp.elements.windows(2) {
        assert!((w[0].end - w[1].start).abs() <= 1e-12, "{what}: path has a gap");
    }
}

/// The headline invariant: on every flavour × op × schedule the analyzer's
/// path length equals the end-to-end virtual time, the bucket attribution
/// sums to the path, and healthy runs never report blocked waits.
#[test]
fn path_tiles_the_makespan_on_every_flavour() {
    let nranks = 4;
    let elems = 4096;
    for variant in [Variant::Mpi, Variant::CColl, Variant::Hzccl, Variant::Auto] {
        for op in ["allreduce", "reduce_scatter"] {
            for segments in [1usize, 4] {
                if variant == Variant::Auto && segments > 1 {
                    continue; // the tuner's plan owns the segment knob
                }
                let opts = CollectiveOpts::for_variant(variant, 1e-4).with_segments(segments);
                let what = format!("{op}/{}/s{segments}", variant.name());
                let (makespan, traces) = run_traced(op, &opts, nranks, elems, None);
                let cp = CriticalPath::analyze(&traces, &NetConfig::default());
                assert_tiles(&cp, makespan, &what);
                assert_eq!(cp.buckets.blocked_wait, 0.0, "{what}: healthy run blocked");
                assert!(cp.buckets.alpha > 0.0, "{what}: a ring always pays α");
            }
        }
    }
}

/// Recursive doubling goes through its dedicated entry point; same
/// invariant.
#[test]
fn path_tiles_the_makespan_on_recursive_doubling() {
    let nranks = 8;
    let data = fields(nranks, 4096);
    let cfg = hzccl::CollectiveConfig::new(1e-4, Mode::SingleThread);
    let report = SimBuilder::new(nranks)
        .net(NetConfig::default())
        .timing(paper_timing(Variant::Hzccl))
        .trace(TraceConfig::default())
        .run(|comm| {
            hzccl::rd::allreduce_rd_hz(comm, &data[comm.rank()], &cfg).expect("rd");
        })
        .expect_clean();
    let makespan = report.stats.makespan;
    let cp = CriticalPath::analyze(&report.traces, &NetConfig::default());
    assert_tiles(&cp, makespan, "rd/hz");
    // every on-path hop decodes to the rd/fold tag spaces
    for tag in cp.by_tag.keys() {
        let info = hzccl::decode_tag(*tag).expect("rd tags decode");
        assert!(matches!(info.phase, "rd" | "fold"), "unexpected phase {}", info.phase);
    }
}

/// Serial MPI ring, uniform chunks: the path's communication composition is
/// the textbook α–β form — an Allreduce crosses the wire `2(N-1)` times,
/// each hop paying one injection α and one chunk serialization. This is the
/// closed form `costmodel::allreduce_mpi` integrates, so the analyzer and
/// the cost model must agree on the α/β split exactly.
#[test]
fn serial_mpi_ring_reproduces_the_alpha_beta_closed_form() {
    let nranks = 4;
    let elems = 4096; // divisible by nranks -> uniform 1024-element chunks
    let net = NetConfig::default();
    let opts = CollectiveOpts::mpi();
    let (makespan, traces) = run_traced("allreduce", &opts, nranks, elems, None);
    let cp = CriticalPath::analyze(&traces, &net);
    assert_tiles(&cp, makespan, "mpi serial closed form");

    let hops = 2 * (nranks - 1) as u64;
    let total_hops: u64 = cp.by_tag.values().map(|t| t.hops).sum();
    assert_eq!(total_hops, hops, "one binding hop per ring step");

    let alpha = hops as f64 * net.latency_s;
    assert!(
        (cp.buckets.alpha - alpha).abs() <= 1e-12,
        "alpha {} vs 2(N-1)α {alpha}",
        cp.buckets.alpha
    );
    let chunk_bytes = (elems / nranks) * 4;
    let wire = hops as f64 * net.serialization_time(chunk_bytes, nranks);
    assert!(
        (cp.buckets.wire - wire).abs() <= 1e-9 * wire,
        "wire {} vs closed form {wire}",
        cp.buckets.wire
    );
    assert_eq!(cp.buckets.jitter, 0.0);
    assert_eq!(cp.buckets.resilience, 0.0);

    // the closed-form model integrates the same α–β terms; the repo-wide
    // contract (tests/end_to_end.rs) is agreement within 2x
    let scen = costmodel::Scenario {
        nranks,
        message_bytes: elems * 4,
        ratio: 1.0,
        net,
        thr: hzccl::paper_model(Variant::Mpi, Mode::SingleThread),
    };
    let model = costmodel::allreduce_mpi(&scen);
    assert!(
        (model / cp.length) < 2.0 && (cp.length / model) < 2.0,
        "model {model} vs path {}",
        cp.length
    );

    // the path's RS/AG phases split evenly: N-1 hops each
    let (mut rs_hops, mut ag_hops) = (0u64, 0u64);
    for (tag, t) in &cp.by_tag {
        match hzccl::decode_tag(*tag).expect("ring tags decode").phase {
            "rs" => rs_hops += t.hops,
            "ag" => ag_hops += t.hops,
            other => panic!("unexpected phase {other}"),
        }
    }
    assert_eq!(rs_hops, (nranks - 1) as u64);
    assert_eq!(ag_hops, (nranks - 1) as u64);
}

/// The pipelined schedule (DESIGN §4.3): splitting each chunk into S
/// segments overlaps wire and compute, so for a compute-heavy compressed
/// ring the pipelined makespan must beat the serial one, the analyzer must
/// see the segmented tag space, and the per-step path composition must drop
/// below the serial step's `W + C` sum (the overlap the closed form
/// `costmodel::pipelined_step` models).
#[test]
fn pipelined_schedule_overlaps_wire_and_compute_on_the_path() {
    let nranks = 4;
    let elems = 512 * 1024; // 2 MiB/rank: enough for overlap to pay
    let segments = 2;
    let serial = CollectiveOpts::hz(1e-4);
    let pipelined = CollectiveOpts::hz(1e-4).with_segments(segments);
    let (t_serial, tr_serial) = run_traced("reduce_scatter", &serial, nranks, elems, None);
    let (t_pipe, tr_pipe) = run_traced("reduce_scatter", &pipelined, nranks, elems, None);
    let net = NetConfig::default();
    let cp_serial = CriticalPath::analyze(&tr_serial, &net);
    let cp_pipe = CriticalPath::analyze(&tr_pipe, &net);
    assert_tiles(&cp_serial, t_serial, "hz serial rs");
    assert_tiles(&cp_pipe, t_pipe, "hz pipelined rs");
    assert!(t_pipe < t_serial, "pipelining must win here: {t_pipe} vs {t_serial}");

    // serial uses only seg 0; the pipelined path crosses higher segments
    let max_seg = |cp: &CriticalPath| {
        cp.by_tag.keys().filter_map(|&t| hzccl::decode_tag(t)).map(|i| i.seg).max().unwrap_or(0)
    };
    assert_eq!(max_seg(&cp_serial), 0);
    assert!(max_seg(&cp_pipe) > 0, "pipelined path never crossed a segment tag");

    // §4.3: the overlapped wire share on the path shrinks — the serial path
    // pays every step's full serialization, the pipelined path hides part
    // of it behind compute.
    assert!(
        cp_pipe.buckets.wire < cp_serial.buckets.wire,
        "pipelined wire {} vs serial {}",
        cp_pipe.buckets.wire,
        cp_serial.buckets.wire
    );
}

/// Fault injection: jitter and resilient-transport recovery time must land
/// in their own path buckets (never silently inflate `wire`/`other`), and
/// the tiling invariant must survive retransmissions.
#[test]
fn faulted_resilient_run_attributes_recovery_time() {
    let nranks = 8;
    let elems = 16 * 1024;
    let opts = CollectiveOpts::hz(1e-4).with_resilience(Resilience::default());
    let plan = FaultPlan::new(7).with_drop(0.05).with_corrupt(0.01).with_jitter(2e-6);
    let (makespan, traces) = run_traced("allreduce", &opts, nranks, elems, Some(plan));
    let cp = CriticalPath::analyze(&traces, &NetConfig::default());
    assert_tiles(&cp, makespan, "faulted hz allreduce");
    assert!(
        cp.buckets.resilience > 0.0,
        "drops at 5% must put retransmit time on the path: {:?}",
        cp.buckets
    );
    // the slack pass still terminates and the straggling recovery chain is
    // critical somewhere
    assert!(cp.critical_fraction(1e-9) > 0.0);
}

/// A deliberately slowed rank owns the path; everyone else gains slack.
#[test]
fn straggler_owns_the_critical_path() {
    let nranks = 4;
    let elems = 16 * 1024;
    let straggler = 2usize;
    let opts = CollectiveOpts::hz(1e-4);
    let plan = FaultPlan::new(1).with_straggler(straggler, 4.0);
    let (makespan, traces) = run_traced("allreduce", &opts, nranks, elems, Some(plan));
    let cp = CriticalPath::analyze(&traces, &NetConfig::default());
    assert_tiles(&cp, makespan, "straggler run");
    let top =
        cp.per_rank.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(r, _)| r).unwrap();
    assert_eq!(top, straggler, "path ownership {:?}", cp.per_rank);
}
